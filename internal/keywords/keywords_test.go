package keywords

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"ktg/internal/graph"
)

func TestVocabularyIntern(t *testing.T) {
	v := NewVocabulary()
	a := v.Intern("social network")
	b := v.Intern("query processing")
	if a == b {
		t.Fatal("distinct names got the same id")
	}
	if v.Intern("social network") != a {
		t.Error("re-interning changed the id")
	}
	if v.Size() != 2 {
		t.Errorf("Size = %d, want 2", v.Size())
	}
	if v.Name(a) != "social network" {
		t.Errorf("Name(%d) = %q", a, v.Name(a))
	}
	if _, ok := v.Lookup("missing"); ok {
		t.Error("Lookup found a missing name")
	}
}

func TestVocabularyNamePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Name on unknown id did not panic")
		}
	}()
	NewVocabulary().Name(5)
}

func TestAssignDeduplicatesAndSorts(t *testing.T) {
	a := NewAttributes(2, nil)
	a.Assign(0, "b", "a", "b", "c", "a")
	got := a.KeywordNames(0)
	// ids assigned in first-seen order: b=0 a=1 c=2 → sorted ids → b a c
	if !reflect.DeepEqual(got, []string{"b", "a", "c"}) {
		t.Fatalf("KeywordNames = %v", got)
	}
	if len(a.Keywords(0)) != 3 {
		t.Fatalf("duplicates survived: %v", a.Keywords(0))
	}
	if !a.Has(0, mustID(t, a, "a")) {
		t.Error("Has(a) = false")
	}
	if a.Has(1, 0) {
		t.Error("unassigned vertex has keywords")
	}
}

func mustID(t *testing.T, a *Attributes, name string) ID {
	t.Helper()
	id, ok := a.Vocabulary().Lookup(name)
	if !ok {
		t.Fatalf("keyword %q not interned", name)
	}
	return id
}

// figure1Attributes builds the keyword table of the paper's Figure 1
// example, restricted to the query keywords {SN, QP, DQ, GQ, GD} plus a
// filler keyword. Coverage facts asserted below come from the paper's
// worked examples: QKC(u4) = 0.2, QKC(u6) = 0.4, u0 covers {SN, GD, DQ},
// u10 covers QP, and {u5, u7} covers 0.2 jointly.
func figure1Attributes() *Attributes {
	a := NewAttributes(12, nil)
	a.Assign(0, "SN", "GD", "DQ")
	a.Assign(1, "SN", "DQ")
	a.Assign(2, "GD")
	a.Assign(3, "SN")
	a.Assign(4, "GQ")
	a.Assign(5, "GD")
	a.Assign(6, "SN", "GQ")
	a.Assign(7, "DQ")
	a.Assign(8, "XX") // no query keyword
	a.Assign(9)       // empty profile
	a.Assign(10, "QP", "SN")
	a.Assign(11, "DQ", "GD")
	return a
}

var figure1Query = []string{"SN", "QP", "DQ", "GQ", "GD"}

func TestQueryCoverageFigure1(t *testing.T) {
	a := figure1Attributes()
	q, err := CompileQueryNames(a, figure1Query)
	if err != nil {
		t.Fatal(err)
	}
	if q.Width() != 5 {
		t.Fatalf("Width = %d, want 5", q.Width())
	}
	if got := q.QKC(4); got != 0.2 {
		t.Errorf("QKC(u4) = %v, want 0.2", got)
	}
	if got := q.QKC(6); got != 0.4 {
		t.Errorf("QKC(u6) = %v, want 0.4", got)
	}
	if got := q.GroupQKC([]graph.Vertex{5, 7}); got != 0.4 {
		t.Errorf("QKC({u5,u7}) = %v, want 0.4 (GD + DQ)", got)
	}
	if got := q.GroupQKC([]graph.Vertex{4, 6}); got != 0.4 {
		t.Errorf("QKC({u4,u6}) = %v, want 0.4 (SN + GQ)", got)
	}
	if q.Covers(8) {
		t.Error("u8 should not cover any query keyword")
	}
	if q.Covers(9) {
		t.Error("u9 has no keywords at all")
	}
	if got := q.GroupQKC([]graph.Vertex{10, 0, 4}); got != 1.0 {
		t.Errorf("QKC({u10,u0,u4}) = %v, want 1.0", got)
	}
}

func TestVKCCount(t *testing.T) {
	a := figure1Attributes()
	q, err := CompileQueryNames(a, figure1Query)
	if err != nil {
		t.Fatal(err)
	}
	covered := q.GroupMask([]graph.Vertex{0}) // {SN, GD, DQ}
	if got := q.VKCCount(10, covered); got != 1 {
		t.Errorf("VKC(u10 | u0) = %d, want 1 (only QP is new)", got)
	}
	if got := q.VKCCount(1, covered); got != 0 {
		t.Errorf("VKC(u1 | u0) = %d, want 0", got)
	}
	if got := q.VKCCount(4, covered); got != 1 {
		t.Errorf("VKC(u4 | u0) = %d, want 1 (GQ)", got)
	}
}

func TestCandidates(t *testing.T) {
	a := figure1Attributes()
	q, err := CompileQueryNames(a, figure1Query)
	if err != nil {
		t.Fatal(err)
	}
	got := q.Candidates()
	want := []graph.Vertex{0, 1, 2, 3, 4, 5, 6, 7, 10, 11}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Candidates = %v, want %v", got, want)
	}
}

func TestCompileQueryRejectsEmpty(t *testing.T) {
	a := NewAttributes(1, nil)
	if _, err := CompileQuery(a, nil); err == nil {
		t.Fatal("CompileQuery accepted an empty query")
	}
}

func TestCompileQueryDeduplicates(t *testing.T) {
	a := NewAttributes(1, nil)
	a.Assign(0, "x")
	id := mustID(t, a, "x")
	q, err := CompileQuery(a, []ID{id, id, id})
	if err != nil {
		t.Fatal(err)
	}
	if q.Width() != 1 {
		t.Fatalf("Width = %d, want 1 after dedup", q.Width())
	}
}

func TestCompileQueryNamesUnknownKeywordsWidenQuery(t *testing.T) {
	a := NewAttributes(2, nil)
	a.Assign(0, "known")
	q, err := CompileQueryNames(a, []string{"known", "never-seen", "never-seen"})
	if err != nil {
		t.Fatal(err)
	}
	if q.Width() != 2 {
		t.Fatalf("Width = %d, want 2 (unknown keyword still occupies a bit)", q.Width())
	}
	if got := q.QKC(0); got != 0.5 {
		t.Errorf("QKC = %v, want 0.5", got)
	}
}

func TestGroupQKCNeverExceedsOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		vocabSize := 1 + r.Intn(15)
		a := NewAttributes(n, nil)
		for v := 0; v < n; v++ {
			ids := make([]ID, r.Intn(6))
			for i := range ids {
				ids[i] = ID(r.Intn(vocabSize))
			}
			a.AssignIDs(graph.Vertex(v), ids...)
		}
		qIDs := make([]ID, 1+r.Intn(8))
		for i := range qIDs {
			qIDs[i] = ID(r.Intn(vocabSize))
		}
		q, err := CompileQuery(a, qIDs)
		if err != nil {
			return false
		}
		group := make([]graph.Vertex, 0, n)
		for v := 0; v < n; v++ {
			group = append(group, graph.Vertex(v))
		}
		g := q.GroupQKC(group)
		if g < 0 || g > 1 {
			return false
		}
		// Group coverage must dominate every member's coverage.
		for _, v := range group {
			if q.QKC(v) > g+1e-12 {
				return false
			}
		}
		// And equal the popcount union.
		sum := q.GroupCoverageCount(group)
		return math.Abs(g-float64(sum)/float64(q.Width())) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVKCConsistentWithGroupGrowth(t *testing.T) {
	// Adding vertex v to a group grows coverage by exactly VKCCount(v).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		a := NewAttributes(n, nil)
		for v := 0; v < n; v++ {
			ids := make([]ID, r.Intn(5))
			for i := range ids {
				ids[i] = ID(r.Intn(10))
			}
			a.AssignIDs(graph.Vertex(v), ids...)
		}
		q, err := CompileQuery(a, []ID{0, 1, 2, 3, 4, 5})
		if err != nil {
			return false
		}
		group := []graph.Vertex{}
		for v := 0; v < n/2; v++ {
			group = append(group, graph.Vertex(v))
		}
		covered := q.GroupMask(group)
		v := graph.Vertex(n - 1)
		before := covered.Count()
		vkc := q.VKCCount(v, covered)
		after := q.GroupCoverageCount(append(group, v))
		return after == before+vkc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAttributesIORoundTrip(t *testing.T) {
	a := figure1Attributes()
	var buf bytes.Buffer
	if err := WriteAttributes(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadAttributes(&buf, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 12; v++ {
		if !reflect.DeepEqual(a.KeywordNames(graph.Vertex(v)), b.KeywordNames(graph.Vertex(v))) {
			t.Fatalf("vertex %d: %v vs %v", v, a.KeywordNames(graph.Vertex(v)), b.KeywordNames(graph.Vertex(v)))
		}
	}
}

func TestReadAttributesErrors(t *testing.T) {
	cases := []struct {
		in, wantSub string
	}{
		{"no-tab-here\n", "id<TAB>"},
		{"x\ta,b\n", "bad vertex id"},
		{"99\ta\n", "out of range"},
	}
	for _, c := range cases {
		_, err := ReadAttributes(strings.NewReader(c.in), 5, nil)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("input %q: err = %v, want containing %q", c.in, err, c.wantSub)
		}
	}
}

func TestAverageKeywordsPerVertex(t *testing.T) {
	a := NewAttributes(4, nil)
	a.Assign(0, "a", "b")
	a.Assign(1, "c")
	// vertices 2, 3 empty
	if got := a.AverageKeywordsPerVertex(); got != 0.75 {
		t.Errorf("AverageKeywordsPerVertex = %v, want 0.75", got)
	}
	if got := NewAttributes(0, nil).AverageKeywordsPerVertex(); got != 0 {
		t.Errorf("empty attributes average = %v, want 0", got)
	}
}
