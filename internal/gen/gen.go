// Package gen synthesizes attributed social networks that stand in for
// the real datasets of the KTG paper (Gowalla, Brightkite, Flickr, DBLP,
// Twitter — all from SNAP — plus the 1M-node DBLP variant).
//
// The evaluation in the paper depends on three dataset properties: the
// degree distribution (heavy-tailed), the hop-distance distribution
// (small-world, peaking around 4–6 hops), and keyword selectivity
// (Zipfian term frequencies). The generator reproduces all three with a
// preferential-attachment process augmented by triadic closure, and a
// Zipf keyword sampler. Every preset is deterministic for a fixed seed.
//
// See DESIGN.md §4 for the substitution rationale.
package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"ktg/internal/graph"
	"ktg/internal/keywords"
)

// Config describes a synthetic attributed social network.
type Config struct {
	// Name labels the dataset in reports.
	Name string
	// N is the number of vertices.
	N int
	// AvgDegree is the target average degree (2|E|/|V|).
	AvgDegree float64
	// TriadicProb is the probability that a new edge closes a triangle
	// instead of following preferential attachment. Higher values give
	// higher clustering (social networks ≈ 0.3–0.6).
	TriadicProb float64
	// VocabSize is the number of distinct keywords.
	VocabSize int
	// KeywordsPerVertex is the mean size of a vertex's keyword set.
	KeywordsPerVertex float64
	// ZipfS is the Zipf exponent for keyword popularity (must be > 1).
	ZipfS float64
	// Seed makes generation deterministic.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("gen: N must be positive, got %d", c.N)
	case c.AvgDegree < 0:
		return fmt.Errorf("gen: AvgDegree must be non-negative, got %v", c.AvgDegree)
	case c.TriadicProb < 0 || c.TriadicProb > 1:
		return fmt.Errorf("gen: TriadicProb must be in [0,1], got %v", c.TriadicProb)
	case c.VocabSize <= 0:
		return fmt.Errorf("gen: VocabSize must be positive, got %d", c.VocabSize)
	case c.KeywordsPerVertex < 0:
		return fmt.Errorf("gen: KeywordsPerVertex must be non-negative, got %v", c.KeywordsPerVertex)
	case c.ZipfS <= 1:
		return fmt.Errorf("gen: ZipfS must exceed 1, got %v", c.ZipfS)
	}
	return nil
}

// Dataset is a generated attributed social network.
type Dataset struct {
	Name   string
	Graph  *graph.Graph
	Attrs  *keywords.Attributes
	Config Config
}

// Generate synthesizes a dataset from the configuration.
func Generate(c Config) (*Dataset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(c.Seed))
	g := generateGraph(c, r)
	attrs := generateAttributes(c, r)
	return &Dataset{Name: c.Name, Graph: g, Attrs: attrs, Config: c}, nil
}

// generateGraph grows a preferential-attachment graph with triadic
// closure. Each arriving vertex attaches m ≈ AvgDegree/2 edges; an edge
// either copies a random endpoint from the running endpoint list
// (preferential attachment: probability of picking v ∝ deg(v)) or, with
// TriadicProb, connects to a random neighbor of the previously chosen
// target (closing a triangle).
func generateGraph(c Config, r *rand.Rand) *graph.Graph {
	n := c.N
	m := int(c.AvgDegree/2 + 0.5)
	if m < 1 {
		m = 1
	}
	if m >= n {
		m = n - 1
	}
	b := graph.NewBuilder(n)
	adj := make([][]graph.Vertex, n) // forward view used for triadic closure

	addEdge := func(u, v graph.Vertex) {
		b.AddEdge(u, v)
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}

	// Endpoint list for degree-proportional sampling.
	endpoints := make([]graph.Vertex, 0, 2*n*m)

	// Seed with a small connected core.
	core := m + 1
	if core > n {
		core = n
	}
	for i := 1; i < core; i++ {
		addEdge(graph.Vertex(i), graph.Vertex(r.Intn(i)))
	}
	for u := 0; u < core; u++ {
		for range adj[u] {
			endpoints = append(endpoints, graph.Vertex(u))
		}
	}

	for v := core; v < n; v++ {
		var prev graph.Vertex
		hasPrev := false
		for e := 0; e < m; e++ {
			var target graph.Vertex
			if hasPrev && len(adj[prev]) > 0 && r.Float64() < c.TriadicProb {
				target = adj[prev][r.Intn(len(adj[prev]))]
			} else if len(endpoints) > 0 {
				target = endpoints[r.Intn(len(endpoints))]
			} else {
				target = graph.Vertex(r.Intn(v))
			}
			if target == graph.Vertex(v) {
				continue
			}
			addEdge(graph.Vertex(v), target)
			endpoints = append(endpoints, graph.Vertex(v), target)
			prev, hasPrev = target, true
		}
	}
	return b.Build()
}

// generateAttributes draws each vertex's keyword-set size from a
// geometric-like distribution with the configured mean and fills it with
// Zipf-distributed keyword ids.
func generateAttributes(c Config, r *rand.Rand) *keywords.Attributes {
	attrs := keywords.NewAttributes(c.N, nil)
	vocab := attrs.Vocabulary()
	for i := 0; i < c.VocabSize; i++ {
		vocab.Intern(fmt.Sprintf("kw%04d", i))
	}
	if c.KeywordsPerVertex == 0 {
		return attrs
	}
	zipf := rand.NewZipf(r, c.ZipfS, 1, uint64(c.VocabSize-1))
	for v := 0; v < c.N; v++ {
		size := sampleCount(r, c.KeywordsPerVertex)
		if size == 0 {
			continue
		}
		// Sample until `size` distinct keywords are drawn; popular
		// Zipf ids repeat, so cap the attempts to avoid stalling when
		// size approaches the effective vocabulary.
		ids := make([]keywords.ID, 0, size)
		seen := make(map[keywords.ID]bool, size)
		for attempts := 0; len(ids) < size && attempts < 20*size; attempts++ {
			id := keywords.ID(zipf.Uint64())
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		attrs.AssignIDs(graph.Vertex(v), ids...)
	}
	return attrs
}

// sampleCount draws a non-negative integer with the given mean, skewed
// like real profile sizes (most vertices near the mean, a long tail).
func sampleCount(r *rand.Rand, mean float64) int {
	// Exponential with the target mean, rounded; clamp the tail.
	x := r.ExpFloat64() * mean
	if x > mean*6 {
		x = mean * 6
	}
	return int(x + 0.5)
}

// KeywordPopularity returns how many vertices carry each keyword id,
// sorted descending. Useful to verify Zipfian shape and to pick query
// keywords in workloads.
func (d *Dataset) KeywordPopularity() []int {
	counts := make([]int, d.Attrs.Vocabulary().Size())
	for v := 0; v < d.Attrs.NumVertices(); v++ {
		for _, id := range d.Attrs.Keywords(graph.Vertex(v)) {
			counts[id]++
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	return counts
}
