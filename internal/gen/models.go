package gen

import (
	"fmt"
	"math/rand"

	"ktg/internal/graph"
)

// Model selects the topology generator. The presets use ModelSocial;
// the alternatives exist for sensitivity studies: the KTG algorithms'
// relative ordering should be stable across topology models with the
// same density (see the ablation benchmarks).
type Model int

const (
	// ModelSocial is preferential attachment with triadic closure —
	// heavy-tailed degrees, high clustering, small world (default).
	ModelSocial Model = iota
	// ModelErdosRenyi is the G(n, M) uniform random graph — Poisson
	// degrees, vanishing clustering.
	ModelErdosRenyi
	// ModelSmallWorld is a Watts–Strogatz ring with rewiring — narrow
	// degrees, high clustering, small world after rewiring.
	ModelSmallWorld
)

// String names the model.
func (m Model) String() string {
	switch m {
	case ModelSocial:
		return "social"
	case ModelErdosRenyi:
		return "erdos-renyi"
	case ModelSmallWorld:
		return "small-world"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ModelByName parses a model name.
func ModelByName(name string) (Model, error) {
	switch name {
	case "social", "":
		return ModelSocial, nil
	case "erdos-renyi", "er":
		return ModelErdosRenyi, nil
	case "small-world", "ws":
		return ModelSmallWorld, nil
	default:
		return 0, fmt.Errorf("gen: unknown model %q", name)
	}
}

// generateER builds an Erdős–Rényi G(n, M) graph with M chosen to hit
// the configured average degree.
func generateER(c Config, r *rand.Rand) *graph.Graph {
	n := c.N
	target := int(float64(n) * c.AvgDegree / 2)
	b := graph.NewBuilder(n)
	if n < 2 {
		return b.Build()
	}
	// Sample edges with replacement; the builder deduplicates, so
	// over-sample slightly and trim by construction order not being
	// observable — duplicates are rare for sparse graphs.
	for added := 0; added < target; added++ {
		u := graph.Vertex(r.Intn(n))
		v := graph.Vertex(r.Intn(n))
		if u == v {
			added--
			continue
		}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// generateWS builds a Watts–Strogatz small-world graph: a ring lattice
// where each vertex connects to its AvgDegree/2 clockwise neighbors,
// then each edge is rewired with probability beta = 0.1.
func generateWS(c Config, r *rand.Rand) *graph.Graph {
	const beta = 0.1
	n := c.N
	k := int(c.AvgDegree / 2)
	if k < 1 {
		k = 1
	}
	b := graph.NewBuilder(n)
	if n < 2 {
		return b.Build()
	}
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			u := graph.Vertex(v)
			w := graph.Vertex((v + j) % n)
			if r.Float64() < beta {
				// Rewire the far endpoint uniformly.
				w = graph.Vertex(r.Intn(n))
				if w == u {
					continue
				}
			}
			b.AddEdge(u, w)
		}
	}
	return b.Build()
}

// GenerateWithModel synthesizes a dataset whose topology follows the
// given model; keywords are assigned identically across models.
func GenerateWithModel(c Config, m Model) (*Dataset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(c.Seed))
	var g *graph.Graph
	switch m {
	case ModelSocial:
		g = generateGraph(c, r)
	case ModelErdosRenyi:
		g = generateER(c, r)
	case ModelSmallWorld:
		g = generateWS(c, r)
	default:
		return nil, fmt.Errorf("gen: unknown model %v", m)
	}
	attrs := generateAttributes(c, r)
	name := c.Name
	if name == "" {
		name = m.String()
	}
	return &Dataset{Name: name, Graph: g, Attrs: attrs, Config: c}, nil
}
