package gen

import (
	"fmt"
	"sort"
	"strings"
)

// Presets mirror the datasets of the paper's Section VII. N and
// AvgDegree reproduce the published node/edge counts; TriadicProb is set
// from the known clustering character of each network (location-based
// check-in graphs cluster more than follower graphs).
//
// Scale the presets down with Preset(name, scale) — the paper ran on a
// 120 GB machine and the NLRNL index materializes a large share of
// all-pairs distances, so full-size NLRNL builds do not fit commodity
// memory. Scaling preserves average degree (and thus the hop-distance
// and degree shapes the algorithms are sensitive to).
var presets = map[string]Config{
	"gowalla": {
		Name: "Gowalla", N: 67320, AvgDegree: 16.6, TriadicProb: 0.45,
		VocabSize: 4000, KeywordsPerVertex: 8, ZipfS: 1.4, Seed: 42,
	},
	"brightkite": {
		Name: "Brightkite", N: 58288, AvgDegree: 7.3, TriadicProb: 0.45,
		VocabSize: 4000, KeywordsPerVertex: 8, ZipfS: 1.4, Seed: 43,
	},
	"flickr": {
		Name: "Flickr", N: 157681, AvgDegree: 17.1, TriadicProb: 0.35,
		VocabSize: 6000, KeywordsPerVertex: 8, ZipfS: 1.4, Seed: 44,
	},
	"dblp": {
		Name: "DBLP", N: 200000, AvgDegree: 12.3, TriadicProb: 0.55,
		VocabSize: 6000, KeywordsPerVertex: 8, ZipfS: 1.4, Seed: 45,
	},
	"twitter": {
		Name: "Twitter", N: 81306, AvgDegree: 43.5, TriadicProb: 0.25,
		VocabSize: 4000, KeywordsPerVertex: 8, ZipfS: 1.4, Seed: 46,
	},
	"dblp1m": {
		Name: "DBLP-1M", N: 1000000, AvgDegree: 12.3, TriadicProb: 0.55,
		VocabSize: 12000, KeywordsPerVertex: 8, ZipfS: 1.4, Seed: 47,
	},
}

// PresetNames returns the known preset names in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset returns the configuration of a named dataset scaled by the
// given factor in (0, 1]: vertex count and vocabulary shrink by the
// factor, average degree is preserved. scale = 1 reproduces the paper's
// published sizes.
func Preset(name string, scale float64) (Config, error) {
	c, ok := presets[strings.ToLower(name)]
	if !ok {
		return Config{}, fmt.Errorf("gen: unknown preset %q (known: %s)",
			name, strings.Join(PresetNames(), ", "))
	}
	if scale <= 0 || scale > 1 {
		return Config{}, fmt.Errorf("gen: scale must be in (0,1], got %v", scale)
	}
	c.N = max(int(float64(c.N)*scale+0.5), 16)
	c.VocabSize = max(int(float64(c.VocabSize)*scale+0.5), 32)
	if scale != 1 {
		c.Name = fmt.Sprintf("%s/%.4g", c.Name, scale)
	}
	return c, nil
}

// GeneratePreset generates a named dataset at the given scale.
func GeneratePreset(name string, scale float64) (*Dataset, error) {
	c, err := Preset(name, scale)
	if err != nil {
		return nil, err
	}
	return Generate(c)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
