package gen

import (
	"math"
	"strings"
	"testing"

	"ktg/internal/graph"
)

func TestValidate(t *testing.T) {
	good := Config{N: 10, AvgDegree: 4, TriadicProb: 0.5, VocabSize: 10, KeywordsPerVertex: 3, ZipfS: 1.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{N: 0, VocabSize: 1, ZipfS: 1.5},
		{N: 5, AvgDegree: -1, VocabSize: 1, ZipfS: 1.5},
		{N: 5, TriadicProb: 1.5, VocabSize: 1, ZipfS: 1.5},
		{N: 5, VocabSize: 0, ZipfS: 1.5},
		{N: 5, VocabSize: 1, KeywordsPerVertex: -2, ZipfS: 1.5},
		{N: 5, VocabSize: 1, ZipfS: 1.0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := Config{N: 500, AvgDegree: 8, TriadicProb: 0.4, VocabSize: 100,
		KeywordsPerVertex: 5, ZipfS: 1.4, Seed: 7}
	a, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatalf("same seed produced different edge counts: %d vs %d",
			a.Graph.NumEdges(), b.Graph.NumEdges())
	}
	for v := 0; v < c.N; v++ {
		an, bn := a.Graph.Neighbors(graph.Vertex(v)), b.Graph.Neighbors(graph.Vertex(v))
		if len(an) != len(bn) {
			t.Fatalf("vertex %d degree differs", v)
		}
		for i := range an {
			if an[i] != bn[i] {
				t.Fatalf("vertex %d neighbors differ", v)
			}
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	c := Config{N: 300, AvgDegree: 6, TriadicProb: 0.4, VocabSize: 50,
		KeywordsPerVertex: 4, ZipfS: 1.4, Seed: 1}
	a, _ := Generate(c)
	c.Seed = 2
	b, _ := Generate(c)
	same := true
	for v := 0; v < c.N && same; v++ {
		an, bn := a.Graph.Neighbors(graph.Vertex(v)), b.Graph.Neighbors(graph.Vertex(v))
		if len(an) != len(bn) {
			same = false
			break
		}
		for i := range an {
			if an[i] != bn[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestGeneratedGraphProperties(t *testing.T) {
	c := Config{N: 2000, AvgDegree: 10, TriadicProb: 0.45, VocabSize: 300,
		KeywordsPerVertex: 8, ZipfS: 1.4, Seed: 11}
	d, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	g := d.Graph
	if err := graph.Validate(g); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	if got := g.AverageDegree(); math.Abs(got-c.AvgDegree) > c.AvgDegree*0.35 {
		t.Errorf("average degree %v far from target %v", got, c.AvgDegree)
	}
	// Preferential attachment must produce hubs.
	if g.MaxDegree() < 4*int(c.AvgDegree) {
		t.Errorf("MaxDegree = %d, expected a heavy tail (> %d)", g.MaxDegree(), 4*int(c.AvgDegree))
	}
	// The graph should be essentially connected (one giant component).
	labels, count := graph.Components(g)
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	if maxSize < c.N*9/10 {
		t.Errorf("giant component has %d of %d vertices", maxSize, c.N)
	}
	// Small world: average distance from vertex 0 should be modest.
	tr := graph.NewTraverser(c.N)
	if ecc := tr.Eccentricity(g, 0); ecc > 12 {
		t.Errorf("eccentricity(0) = %d, expected small-world (<= 12)", ecc)
	}
}

func TestGeneratedKeywordsZipfian(t *testing.T) {
	c := Config{N: 3000, AvgDegree: 6, TriadicProb: 0.3, VocabSize: 200,
		KeywordsPerVertex: 8, ZipfS: 1.4, Seed: 3}
	d, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Attrs.AverageKeywordsPerVertex(); math.Abs(got-8) > 2.5 {
		t.Errorf("average keywords per vertex = %v, want ≈ 8", got)
	}
	pop := d.KeywordPopularity()
	if pop[0] < 5*pop[len(pop)/4] {
		t.Errorf("keyword popularity not heavy-tailed: top=%d quartile=%d", pop[0], pop[len(pop)/4])
	}
}

func TestGenerateTinyGraph(t *testing.T) {
	d, err := Generate(Config{N: 2, AvgDegree: 1, VocabSize: 2,
		KeywordsPerVertex: 1, ZipfS: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if d.Graph.NumVertices() != 2 {
		t.Fatalf("NumVertices = %d", d.Graph.NumVertices())
	}
	if err := graph.Validate(d.Graph); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateNoKeywords(t *testing.T) {
	d, err := Generate(Config{N: 10, AvgDegree: 2, VocabSize: 5, ZipfS: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Attrs.AverageKeywordsPerVertex(); got != 0 {
		t.Errorf("expected no keywords, got average %v", got)
	}
}

func TestPresets(t *testing.T) {
	names := PresetNames()
	want := []string{"brightkite", "dblp", "dblp1m", "flickr", "gowalla", "twitter"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("PresetNames = %v, want %v", names, want)
	}
	for _, n := range names {
		c, err := Preset(n, 0.01)
		if err != nil {
			t.Fatalf("Preset(%s): %v", n, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("Preset(%s) invalid: %v", n, err)
		}
	}
}

func TestPresetScaling(t *testing.T) {
	full, err := Preset("gowalla", 1)
	if err != nil {
		t.Fatal(err)
	}
	if full.N != 67320 {
		t.Errorf("full gowalla N = %d, want 67320 (paper size)", full.N)
	}
	half, err := Preset("gowalla", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if half.N != 33660 {
		t.Errorf("half gowalla N = %d, want 33660", half.N)
	}
	if half.AvgDegree != full.AvgDegree {
		t.Error("scaling changed average degree")
	}
	if !strings.Contains(half.Name, "0.5") {
		t.Errorf("scaled name %q should carry the scale", half.Name)
	}
}

func TestPresetErrors(t *testing.T) {
	if _, err := Preset("nope", 1); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := Preset("dblp", 0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := Preset("dblp", 1.5); err == nil {
		t.Error("super-unit scale accepted")
	}
}

func TestGeneratePresetSmoke(t *testing.T) {
	d, err := GeneratePreset("brightkite", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if d.Graph.NumVertices() < 1000 {
		t.Errorf("scaled brightkite too small: %d", d.Graph.NumVertices())
	}
	if err := graph.Validate(d.Graph); err != nil {
		t.Fatal(err)
	}
}
