package gen

import (
	"math"
	"testing"

	"ktg/internal/graph"
)

func modelConfig() Config {
	return Config{
		N: 2000, AvgDegree: 8, TriadicProb: 0.45,
		VocabSize: 200, KeywordsPerVertex: 6, ZipfS: 1.4, Seed: 21,
	}
}

func TestModelNames(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Model
	}{
		{"social", ModelSocial},
		{"", ModelSocial},
		{"erdos-renyi", ModelErdosRenyi},
		{"er", ModelErdosRenyi},
		{"small-world", ModelSmallWorld},
		{"ws", ModelSmallWorld},
	} {
		got, err := ModelByName(c.in)
		if err != nil || got != c.want {
			t.Errorf("ModelByName(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ModelByName("ring"); err == nil {
		t.Error("unknown model accepted")
	}
	if ModelSocial.String() != "social" || ModelErdosRenyi.String() != "erdos-renyi" {
		t.Error("model String broken")
	}
}

func TestGenerateWithModelValidates(t *testing.T) {
	if _, err := GenerateWithModel(Config{}, ModelSocial); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := GenerateWithModel(modelConfig(), Model(99)); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestModelsHitTargetDensity(t *testing.T) {
	c := modelConfig()
	for _, m := range []Model{ModelSocial, ModelErdosRenyi, ModelSmallWorld} {
		d, err := GenerateWithModel(c, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := graph.Validate(d.Graph); err != nil {
			t.Fatalf("%v: invalid graph: %v", m, err)
		}
		got := d.Graph.AverageDegree()
		if math.Abs(got-c.AvgDegree) > c.AvgDegree*0.35 {
			t.Errorf("%v: average degree %v, want ≈ %v", m, got, c.AvgDegree)
		}
	}
}

func TestModelsHaveDistinctShapes(t *testing.T) {
	c := modelConfig()
	social, err := GenerateWithModel(c, ModelSocial)
	if err != nil {
		t.Fatal(err)
	}
	er, err := GenerateWithModel(c, ModelErdosRenyi)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := GenerateWithModel(c, ModelSmallWorld)
	if err != nil {
		t.Fatal(err)
	}
	// Degree tails: preferential attachment must produce far bigger
	// hubs than either ER or WS.
	if social.Graph.MaxDegree() < 2*er.Graph.MaxDegree() {
		t.Errorf("social max degree %d not heavy-tailed vs ER %d",
			social.Graph.MaxDegree(), er.Graph.MaxDegree())
	}
	if social.Graph.MaxDegree() < 2*ws.Graph.MaxDegree() {
		t.Errorf("social max degree %d not heavy-tailed vs WS %d",
			social.Graph.MaxDegree(), ws.Graph.MaxDegree())
	}
	// Clustering: triadic closure and ring lattices cluster; ER does not.
	socialCC := graph.ClusteringCoefficient(social.Graph)
	erCC := graph.ClusteringCoefficient(er.Graph)
	wsCC := graph.ClusteringCoefficient(ws.Graph)
	if socialCC < 3*erCC {
		t.Errorf("social clustering %v not >> ER clustering %v", socialCC, erCC)
	}
	if wsCC < 3*erCC {
		t.Errorf("WS clustering %v not >> ER clustering %v", wsCC, erCC)
	}
}

func TestModelKeywordsIdenticalAcrossModels(t *testing.T) {
	c := modelConfig()
	a, err := GenerateWithModel(c, ModelErdosRenyi)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWithModel(c, ModelErdosRenyi)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 50; v++ {
		ka, kb := a.Attrs.Keywords(graph.Vertex(v)), b.Attrs.Keywords(graph.Vertex(v))
		if len(ka) != len(kb) {
			t.Fatal("same seed produced different keyword sets")
		}
	}
}
