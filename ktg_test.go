package ktg_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"ktg"
)

// reviewerNetwork builds the Figure 1 reviewer-selection network through
// the public API.
func reviewerNetwork(t *testing.T) *ktg.Network {
	t.Helper()
	b := ktg.NewBuilder(12)
	edges := [][2]ktg.Vertex{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 9}, {0, 11},
		{2, 3}, {3, 4}, {3, 9},
		{4, 6}, {4, 8}, {5, 6}, {6, 7}, {6, 9}, {7, 8},
		{9, 10}, {10, 11},
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	b.SetKeywords(0, "SN", "GD", "DQ")
	b.SetKeywords(1, "SN", "DQ")
	b.SetKeywords(2, "GD")
	b.SetKeywords(3, "SN")
	b.SetKeywords(4, "GQ")
	b.SetKeywords(5, "GD")
	b.SetKeywords(6, "SN", "GQ")
	b.SetKeywords(7, "DQ")
	b.SetKeywords(8, "XX")
	b.SetKeywords(10, "QP", "SN")
	b.SetKeywords(11, "DQ", "GD")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

var reviewerQuery = ktg.Query{
	Keywords:  []string{"SN", "QP", "DQ", "GQ", "GD"},
	GroupSize: 3,
	Tenuity:   1,
	TopN:      2,
}

func TestNetworkBasics(t *testing.T) {
	n := reviewerNetwork(t)
	if n.NumVertices() != 12 {
		t.Fatalf("NumVertices = %d, want 12", n.NumVertices())
	}
	if n.NumEdges() != 17 {
		t.Fatalf("NumEdges = %d, want 17", n.NumEdges())
	}
	if got := n.Keywords(10); !reflect.DeepEqual(got, []string{"QP", "SN"}) {
		t.Errorf("Keywords(10) = %v", got)
	}
	if n.Degree(0) != 6 {
		t.Errorf("Degree(0) = %d, want 6", n.Degree(0))
	}
	if len(n.Keywords(9)) != 0 {
		t.Errorf("vertex 9 should have no keywords, got %v", n.Keywords(9))
	}
}

func TestSearchEndToEnd(t *testing.T) {
	n := reviewerNetwork(t)
	for _, alg := range []ktg.Algorithm{ktg.AlgVKCDeg, ktg.AlgVKC, ktg.AlgQKC, ktg.AlgBruteForce} {
		res, err := n.Search(reviewerQuery, ktg.SearchOptions{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res.Groups) != 2 {
			t.Fatalf("%v: got %d groups, want 2", alg, len(res.Groups))
		}
		best := res.Groups[0]
		if best.QKC != 1.0 {
			t.Errorf("%v: best QKC = %v, want 1.0", alg, best.QKC)
		}
		if len(best.Covered) != 5 {
			t.Errorf("%v: Covered = %v, want all 5 query keywords", alg, best.Covered)
		}
		if len(best.Members) != 3 {
			t.Errorf("%v: got %d members", alg, len(best.Members))
		}
	}
}

func TestSearchWithIndexes(t *testing.T) {
	n := reviewerNetwork(t)
	nl, err := n.BuildNL(0)
	if err != nil {
		t.Fatal(err)
	}
	nlrnl, err := n.BuildNLRNL()
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []ktg.DistanceIndex{n.NewBFSIndex(), nl, nlrnl} {
		res, err := n.Search(reviewerQuery, ktg.SearchOptions{Index: idx})
		if err != nil {
			t.Fatalf("%s: %v", idx.Name(), err)
		}
		if res.Groups[0].QKC != 1.0 {
			t.Errorf("%s: best QKC = %v", idx.Name(), res.Groups[0].QKC)
		}
		if res.Stats.DistanceChecks == 0 {
			t.Errorf("%s: no distance checks recorded", idx.Name())
		}
	}
}

func TestIndexPersistence(t *testing.T) {
	n := reviewerNetwork(t)
	nl, err := n.BuildNL(2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nl.Save(&buf); err != nil {
		t.Fatal(err)
	}
	nl2, err := n.LoadNL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nl2.H() != nl.H() || nl2.Entries() != nl.Entries() {
		t.Error("loaded NL differs from saved")
	}

	nlrnl, err := n.BuildNLRNL()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := nlrnl.Save(&buf); err != nil {
		t.Fatal(err)
	}
	nlrnl2, err := n.LoadNLRNL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nlrnl2.Entries() != nlrnl.Entries() {
		t.Error("loaded NLRNL differs from saved")
	}
	if d := nlrnl2.Distance(3, 5); d != 3 {
		t.Errorf("Distance(3,5) = %d, want 3", d)
	}
}

func TestDynamicIndexUpdates(t *testing.T) {
	n := reviewerNetwork(t)
	idx, err := n.BuildNLRNL()
	if err != nil {
		t.Fatal(err)
	}
	if !idx.Within(6, 7, 1) {
		t.Fatal("u6 and u7 start adjacent")
	}
	if !idx.RemoveEdge(6, 7) {
		t.Fatal("RemoveEdge(6,7) failed")
	}
	if idx.Within(6, 7, 1) {
		t.Error("u6-u7 still within 1 hop after removal")
	}
	if !idx.InsertEdge(6, 7) {
		t.Fatal("InsertEdge(6,7) failed")
	}
	if !idx.Within(6, 7, 1) {
		t.Error("u6-u7 not adjacent after reinsertion")
	}
}

func TestNetworkIORoundTrip(t *testing.T) {
	n := reviewerNetwork(t)
	var edges, attrs bytes.Buffer
	if err := n.SaveEdgeList(&edges); err != nil {
		t.Fatal(err)
	}
	if err := n.SaveAttributes(&attrs); err != nil {
		t.Fatal(err)
	}
	n2, err := ktg.LoadNetwork(&edges, &attrs)
	if err != nil {
		t.Fatal(err)
	}
	if n2.NumVertices() != n.NumVertices() || n2.NumEdges() != n.NumEdges() {
		t.Fatal("round trip changed network size")
	}
	res, err := n2.Search(reviewerQuery, ktg.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups[0].QKC != 1.0 {
		t.Errorf("reloaded network best QKC = %v", res.Groups[0].QKC)
	}
}

func TestSearchDiverseEndToEnd(t *testing.T) {
	n := reviewerNetwork(t)
	dr, err := n.SearchDiverse(reviewerQuery, ktg.DiverseOptions{Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(dr.Groups) == 0 {
		t.Fatal("no diverse groups")
	}
	if dr.Groups[0].QKC != 1.0 {
		t.Errorf("first diverse group QKC = %v, want 1.0", dr.Groups[0].QKC)
	}
	seen := map[ktg.Vertex]bool{}
	for _, g := range dr.Groups {
		for _, v := range g.Members {
			if seen[v] {
				t.Fatal("diverse groups overlap")
			}
			seen[v] = true
		}
	}
	if len(dr.Groups) > 1 && dr.Diversity != 1.0 {
		t.Errorf("Diversity = %v, want 1.0", dr.Diversity)
	}
}

func TestTAGQBaselineEndToEnd(t *testing.T) {
	n := reviewerNetwork(t)
	res, err := n.TAGQBaseline(reviewerQuery, 0.34, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("TAGQ found nothing")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	n := reviewerNetwork(t)
	_, err := n.Search(reviewerQuery, ktg.SearchOptions{MaxNodes: 2})
	if !errors.Is(err, ktg.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
}

func TestGeneratePresetAndQuery(t *testing.T) {
	n, err := ktg.GeneratePreset("brightkite", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumVertices() < 1000 {
		t.Fatalf("preset too small: %d", n.NumVertices())
	}
	kws := n.PopularKeywords(6)
	if len(kws) != 6 {
		t.Fatalf("PopularKeywords returned %d names", len(kws))
	}
	res, err := n.Search(ktg.Query{
		Keywords:  kws,
		GroupSize: 3,
		Tenuity:   1,
		TopN:      3,
	}, ktg.SearchOptions{MaxNodes: 200000})
	if err != nil && !errors.Is(err, ktg.ErrBudgetExhausted) {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("no groups on generated preset")
	}
}

func TestPresetsListed(t *testing.T) {
	ps := ktg.Presets()
	if len(ps) != 6 {
		t.Fatalf("Presets = %v, want 6 names", ps)
	}
	if _, err := ktg.GeneratePreset("unknown", 0.5); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestQueryVerticesExtension(t *testing.T) {
	n := reviewerNetwork(t)
	res, err := n.Search(reviewerQuery, ktg.SearchOptions{
		QueryVertices: []ktg.Vertex{9},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Groups {
		for _, v := range g.Members {
			for _, banned := range []ktg.Vertex{9, 0, 3, 6, 10} {
				if v == banned {
					t.Fatalf("member %d too close to query vertex", v)
				}
			}
		}
	}
}

func TestCoveredKeywordsHelper(t *testing.T) {
	n := reviewerNetwork(t)
	got := n.CoveredKeywords(reviewerQuery, []ktg.Vertex{0, 10})
	want := []string{"DQ", "GD", "QP", "SN"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CoveredKeywords = %v, want %v", got, want)
	}
}

func TestSearchGreedyEndToEnd(t *testing.T) {
	n := reviewerNetwork(t)
	res, err := n.SearchGreedy(reviewerQuery, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("greedy found nothing")
	}
	if res.Groups[0].QKC != 1.0 {
		t.Errorf("greedy best QKC = %v, want 1.0 on the fixture", res.Groups[0].QKC)
	}
	for _, g := range res.Groups {
		if len(g.Members) != reviewerQuery.GroupSize {
			t.Fatalf("greedy group size %d", len(g.Members))
		}
	}
}
