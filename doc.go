// Package ktg implements keyword-based socially tenuous group (KTG)
// queries over attributed social networks, reproducing the system of
// "Keyword-based Socially Tenuous Group Queries" (Zhu et al., ICDE 2023).
//
// A KTG query ⟨W_Q, p, k, N⟩ finds the top-N groups of exactly p members
// such that every pair of members has social (hop) distance greater than
// k, every member covers at least one query keyword, and the members
// jointly cover as many query keywords as possible. The diversified
// variant (DKTG) additionally returns pairwise-diverse groups.
//
// # Quick start
//
//	net, err := ktg.GeneratePreset("gowalla", 0.05)   // or build/load your own
//	if err != nil { ... }
//	idx, err := net.BuildNLRNL()                      // fast distance index
//	if err != nil { ... }
//	res, err := net.Search(ktg.Query{
//		Keywords:  []string{"kw0001", "kw0007", "kw0042"},
//		GroupSize: 3,
//		Tenuity:   2,
//		TopN:      5,
//	}, ktg.SearchOptions{Index: idx})
//
// The package exposes the paper's full algorithm family: the exact
// branch-and-bound searches KTG-QKC, KTG-VKC and KTG-VKC-DEG (selected
// with SearchOptions.Algorithm), the DKTG-Greedy diversified search
// (Network.SearchDiverse), the brute-force reference, and the NL / NLRNL
// social-distance indexes with persistence and dynamic edge updates.
//
// For serving, LiveNetwork makes edge updates safe under concurrent
// searches: ApplyEdges maintains a private copy-on-write replica of the
// graph + index (§V-B incremental rules) and publishes each batch as a
// new immutable epoch via an atomic pointer swap, so searches always
// read one consistent epoch and readers never block on writers. This is
// the model behind the query server's POST /v1/edges endpoint.
package ktg
