package ktg

import (
	"context"
	"io"
	"log/slog"
	"time"

	"ktg/internal/core"
	"ktg/internal/obs"
)

// Tracer receives span-style phase timings and point events from
// searches and index builds. It mirrors the internal observability
// layer's interface exactly (builtin/stdlib parameter types only), so
// any implementation plugs straight into the engine with no adapter.
// A nil tracer disables tracing; the search hot path then pays a single
// branch per branch-and-bound node.
type Tracer interface {
	// Span records a completed phase and its wall-clock duration.
	Span(phase string, d time.Duration)
	// Event records a point measurement inside a phase.
	Event(phase, name string, value int64)
}

// Phase names delivered to a Tracer.
const (
	// TracePhaseCompile covers query keyword compilation.
	TracePhaseCompile = obs.PhaseCompile
	// TracePhaseCandidates covers the initial candidate-set build.
	TracePhaseCandidates = obs.PhaseCandidates
	// TracePhaseExplore covers branch-and-bound exploration. Per-node
	// "node" events carry the node's depth; end-of-search
	// "depth<d>.nodes/pruned/filtered" events carry the per-depth
	// totals.
	TracePhaseExplore = obs.PhaseExplore
	// TracePhaseIndexBuild covers NL/NLRNL construction.
	TracePhaseIndexBuild = obs.PhaseIndexBuild
	// TracePhaseSerialize covers index save/load.
	TracePhaseSerialize = obs.PhaseSerialize
)

// SetDefaultLogger installs the process-wide structured logger used by
// every search and index build that was not handed a more specific one
// via Network.SetLogger or SearchOptions.Logger. The library default
// discards all records, so instrumentation is free until opted in.
// Passing nil restores the silent default.
func SetDefaultLogger(l *slog.Logger) { obs.SetLogger(l) }

// NewRequestID returns a fresh random request identifier (16 hex
// chars), the same generator the query server uses for requests that
// arrive without an X-Request-Id header.
func NewRequestID() string { return obs.NewRequestID() }

// WithRequestID returns a context carrying a request ID. Searches run
// with this context (SearchOptions.Context) correlate their core-level
// log lines with the ID even when no request-scoped logger was
// injected, and server-side records pick it up end to end.
func WithRequestID(ctx context.Context, id string) context.Context {
	return obs.WithRequestID(ctx, id)
}

// RequestIDFromContext returns the request ID attached by
// WithRequestID, or "" when none is present.
func RequestIDFromContext(ctx context.Context) string {
	return obs.RequestIDFromContext(ctx)
}

// StartDebugServer serves the library's observability surface on addr
// (e.g. ":6060"): Prometheus-text metrics on /metrics (?format=json for
// JSON), expvar on /debug/vars, and the standard profiles under
// /debug/pprof/. It returns the bound address (useful with ":0") and a
// shutdown function. The cmd/ tools expose it as -debug-addr.
func StartDebugServer(addr string) (string, func() error, error) {
	return obs.StartDebugServer(addr)
}

// WriteMetrics renders the process-wide KTG metrics in the Prometheus
// text exposition format.
func WriteMetrics(w io.Writer) error { return obs.Default().WritePrometheus(w) }

// MetricsSnapshot returns the process-wide KTG metrics as a plain map
// (histograms appear as {count, sum, mean, p50, p99} objects).
func MetricsSnapshot() map[string]any { return obs.Default().Snapshot() }

// Process-wide search metrics, batched at search boundaries so the hot
// path never touches them per node.
var (
	mSearches = obs.Default().Counter(
		"ktg_searches_total", "KTG/DKTG/greedy searches answered")
	mSearchNanos = obs.Default().Histogram(
		"ktg_search_duration_ns", "end-to-end search wall-clock time in nanoseconds")
	mSearchNodes = obs.Default().Counter(
		"ktg_search_nodes_total", "branch-and-bound nodes explored")
	mSearchPruned = obs.Default().Counter(
		"ktg_search_pruned_total", "subtrees cut by keyword pruning (Theorem 2)")
	mSearchFiltered = obs.Default().Counter(
		"ktg_search_filtered_total", "candidates removed by k-line filtering (Theorem 3)")
	mSearchOracle = obs.Default().Counter(
		"ktg_search_distance_checks_total", "social-distance oracle calls")
	mSearchFeasible = obs.Default().Counter(
		"ktg_search_feasible_total", "complete size-p groups evaluated")
	mSearchExhausted = obs.Default().Counter(
		"ktg_search_budget_exhausted_total", "searches aborted by MaxNodes/MaxDuration")
)

// recordSearch folds one finished search into the process-wide metrics.
func recordSearch(dur time.Duration, s core.Stats, budgetHit bool) {
	mSearches.Inc()
	mSearchNanos.Observe(dur.Nanoseconds())
	mSearchNodes.Add(s.Nodes)
	mSearchPruned.Add(s.Pruned)
	mSearchFiltered.Add(s.Filtered)
	mSearchOracle.Add(s.OracleCalls)
	mSearchFeasible.Add(s.Feasible)
	if budgetHit {
		mSearchExhausted.Inc()
	}
}
