package ktg

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"ktg/internal/core"
)

// CandidateSlice assigns a strided slice of the search's depth-0
// candidate frontier to one shard: frontier position p belongs to slice
// Index iff p % Count == Index. Running SearchPartial once per slice of
// a partition and merging with MergePartials reproduces Search exactly.
type CandidateSlice struct {
	// Index identifies this slice, 0 ≤ Index < Count.
	Index int
	// Count is the total number of slices in the partition.
	Count int
}

// PartialOffer is one group accepted into a shard's local top-N heap,
// tagged with its position in the deterministic exploration order. The
// tags let MergePartials replay the global offer stream and reproduce
// single-node results exactly, including tie-breaking.
type PartialOffer struct {
	Group
	// Coverage is the absolute number of query keywords covered (the
	// merge ranking key; QKC is this divided by the query width).
	Coverage int
	// RootPos is the group's depth-0 root index in the sorted frontier.
	RootPos int
	// Seq is the acceptance sequence number within that root's subtree.
	Seq int
}

// PartialResult is one shard's mergeable search output.
type PartialResult struct {
	// Slice is the frontier slice this shard explored.
	Slice CandidateSlice
	// FrontierSize is the total depth-0 frontier size; shards of a
	// consistent partition must agree on it.
	FrontierSize int
	// QueryWidth is |W_Q| after deduplication.
	QueryWidth int
	// Best is the highest coverage in the local heap (0 when empty).
	Best int
	// Threshold is the local C_max bound (-1 while the heap isn't full).
	Threshold int
	// Truncated reports an early stop (budget, deadline, cancellation);
	// merges over truncated parts are flagged inexact.
	Truncated bool
	// Offers is the ordered stream of locally-accepted heap offers that
	// MergePartials replays.
	Offers []PartialOffer
	// Groups is the shard-local top-N view (diagnostic).
	Groups []Group
	// Stats reports this shard's search effort.
	Stats SearchStats
}

// SearchPartial answers the slice-assigned part of a KTG query: the
// branch-and-bound explores only the depth-0 roots owned by slice, with
// identical ordering, pruning, and budget semantics to Search. Only the
// exact branch-and-bound algorithms support partial execution;
// AlgBruteForce is rejected.
//
// Like Search, budget exhaustion or cancellation returns the partial
// result found so far alongside ErrBudgetExhausted (or the context
// error), with Truncated set.
func (n *Network) SearchPartial(q Query, opts SearchOptions, slice CandidateSlice) (*PartialResult, error) {
	if opts.Algorithm == AlgBruteForce {
		return nil, fmt.Errorf("ktg: brute force cannot run as a partial search")
	}
	cq, copts := n.lower(q, opts)
	start := time.Now()
	pr, err := core.SearchPartial(n.g, n.attrs, cq, copts, core.CandidateSlice{
		Index: slice.Index,
		Count: slice.Count,
	})
	if pr == nil {
		return nil, err
	}
	recordSearch(time.Since(start), pr.Stats, errors.Is(err, ErrBudgetExhausted))
	out := &PartialResult{
		Slice:        slice,
		FrontierSize: pr.FrontierSize,
		QueryWidth:   pr.QueryWidth,
		Best:         pr.Best,
		Threshold:    pr.Threshold,
		Truncated:    pr.Truncated,
		Stats:        liftStats(pr.Stats),
	}
	for _, o := range pr.Offers {
		out.Offers = append(out.Offers, PartialOffer{
			Group:    n.liftGroup(o.Group, pr.QueryWidth, q.Keywords),
			Coverage: o.Coverage,
			RootPos:  o.RootPos,
			Seq:      o.Seq,
		})
	}
	for _, g := range pr.Groups {
		out.Groups = append(out.Groups, n.liftGroup(g, pr.QueryWidth, q.Keywords))
	}
	return out, err
}

// MergePartials combines shard results into one Result holding the top
// topN groups, byte-identical to single-node Search when the partition
// is complete and untruncated (exact=true). It needs no Network:
// keyword names ride on the offers, so a coordinator holding no dataset
// can merge. Inconsistent parts (mixed partition sizes, disagreeing
// frontiers — i.e. shards serving different datasets) are an error,
// never a silently wrong answer.
func MergePartials(topN int, parts []*PartialResult) (res *Result, exact bool, err error) {
	cparts := make([]*core.PartialResult, 0, len(parts))
	covered := make(map[string][]string)
	var stats SearchStats
	for _, p := range parts {
		if p == nil {
			return nil, false, fmt.Errorf("ktg: merge got a nil partial result")
		}
		cp := &core.PartialResult{
			Slice:        core.CandidateSlice{Index: p.Slice.Index, Count: p.Slice.Count},
			FrontierSize: p.FrontierSize,
			QueryWidth:   p.QueryWidth,
			Truncated:    p.Truncated,
		}
		for _, o := range p.Offers {
			cp.Offers = append(cp.Offers, core.PartialOffer{
				Group:   core.Group{Members: o.Members, Coverage: o.Coverage},
				RootPos: o.RootPos,
				Seq:     o.Seq,
			})
			covered[memberKey(o.Members)] = o.Covered
		}
		cparts = append(cparts, cp)
		addStats(&stats, p.Stats)
	}
	cres, exact, err := core.MergePartials(topN, cparts)
	if err != nil {
		return nil, false, err
	}
	out := &Result{Stats: stats}
	for _, g := range cres.Groups {
		out.Groups = append(out.Groups, Group{
			Members: append([]Vertex(nil), g.Members...),
			Covered: covered[memberKey(g.Members)],
			QKC:     g.QKC(cres.QueryWidth),
		})
	}
	return out, exact, nil
}

// memberKey canonicalizes a member list (already sorted ascending) into
// a map key for re-attaching covered-keyword names after the merge.
func memberKey(members []Vertex) string {
	var b strings.Builder
	for i, v := range members {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(uint64(v), 10))
	}
	return b.String()
}

// addStats accumulates o into s (the public mirror of core.Stats.Add).
func addStats(s *SearchStats, o SearchStats) {
	s.Nodes += o.Nodes
	s.Pruned += o.Pruned
	s.Filtered += o.Filtered
	s.DistanceChecks += o.DistanceChecks
	s.Feasible += o.Feasible
	s.CompileTime += o.CompileTime
	s.CandidateTime += o.CandidateTime
	s.ExploreTime += o.ExploreTime
	s.DepthNodes = addDepthCounts(s.DepthNodes, o.DepthNodes)
	s.DepthPruned = addDepthCounts(s.DepthPruned, o.DepthPruned)
	s.DepthFiltered = addDepthCounts(s.DepthFiltered, o.DepthFiltered)
}

func addDepthCounts(dst, src []int64) []int64 {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}
