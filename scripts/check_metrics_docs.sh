#!/bin/sh
# Metrics-drift gate: every statically named ktg_* metric registered in
# non-test Go code must appear in README.md's metrics reference, so the
# docs cannot silently fall behind the code. Dynamically prefixed tracer
# metrics (obs.MetricsTracer's ktg_span_* / ktg_event_*) have no string
# literal here and are documented as families instead.
set -eu
cd "$(dirname "$0")/.."

status=0
for name in $(grep -rhoE '"ktg_[a-zA-Z0-9_]+"' --include='*.go' --exclude='*_test.go' . \
        | tr -d '"' | sort -u); do
    if ! grep -q "$name" README.md; then
        echo "check_metrics_docs: $name is registered in code but undocumented in README.md" >&2
        status=1
    fi
done
[ "$status" -eq 0 ] && echo "check_metrics_docs: ok"
exit "$status"
