#!/bin/sh
# Perf-drift gate: re-run the "small" committed-baseline experiment
# (internal/expr, the same sweep `ktgbench -exp small` runs) and compare
# each measurement row against the checked-in BENCH_small.json. A row
# whose mean latency or explored nodes grew beyond 2x the baseline fails
# the gate; smaller regressions only warn, which keeps the gate robust
# against machine-to-machine noise while still catching real blowups
# (a broken prune bound shows up as 10-1000x, not 1.3x).
#
# Env knobs:
#   CHECK_BENCH_FAIL_RATIO  ratio that fails the gate   (default 2.0)
#   CHECK_BENCH_WARN_RATIO  ratio that warns            (default 1.25)
#   CHECK_BENCH_SCALE       override dataset scale      (skips the gate)
#   CHECK_BENCH_QUERIES     override queries per point  (skips the gate)
#
# Refresh the baseline after an intentional perf change with:
#   go run ./cmd/ktgbench -exp small -json . -force
set -eu
cd "$(dirname "$0")/.."

BASELINE=BENCH_small.json
FAIL_RATIO=${CHECK_BENCH_FAIL_RATIO:-2.0}
WARN_RATIO=${CHECK_BENCH_WARN_RATIO:-1.25}

if ! command -v jq >/dev/null 2>&1; then
    echo "check_bench: jq not installed; SKIPPING the benchmark regression gate" >&2
    exit 0
fi
if [ ! -f "$BASELINE" ]; then
    echo "check_bench: $BASELINE missing (generate with: go run ./cmd/ktgbench -exp small -json .)" >&2
    exit 1
fi

base_scale=$(jq -r .scale "$BASELINE")
base_queries=$(jq -r .queries "$BASELINE")
scale=${CHECK_BENCH_SCALE:-$base_scale}
queries=${CHECK_BENCH_QUERIES:-$base_queries}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "check_bench: running experiment small (scale=$scale, $queries queries/point)..." >&2
go run ./cmd/ktgbench -exp small -scale "$scale" -queries "$queries" -quiet -json "$tmp" >/dev/null

if [ "$scale" != "$base_scale" ] || [ "$queries" != "$base_queries" ]; then
    echo "check_bench: scale/queries overridden ($scale/$queries vs baseline $base_scale/$base_queries); sweep ran but the ratio gate is SKIPPED" >&2
    exit 0
fi

report=$(jq -r --argjson fail "$FAIL_RATIO" --argjson warn "$WARN_RATIO" \
    --slurpfile new "$tmp/BENCH_small.json" '
  def key: "\(.dataset) \(.param)=\(.value) \(.algo)";
  ($new[0].rows | INDEX(key)) as $n
  | .rows[] | . as $b | $n[key] as $r
  | if $r == null then "MISS \(key): row absent from the fresh run"
    else
      (if $b.ns_per_op > 0 then $r.ns_per_op / $b.ns_per_op else 1 end) as $lat
      | (if $b.nodes_per_op > 0 then $r.nodes_per_op / $b.nodes_per_op else 1 end) as $nodes
      | (if $lat >= $fail or $nodes >= $fail then "FAIL"
         elif $lat >= $warn or $nodes >= $warn then "WARN"
         else "ok" end)
        + " \(key): latency x\($lat * 100 | round / 100) (\($b.ns_per_op) -> \($r.ns_per_op) ns/op), nodes x\($nodes * 100 | round / 100)"
    end
' "$BASELINE")

echo "$report"
if echo "$report" | grep -Eq '^(FAIL|MISS)'; then
    echo "check_bench: FAILED — a row regressed beyond ${FAIL_RATIO}x the committed baseline" >&2
    exit 1
fi
if echo "$report" | grep -q '^WARN'; then
    echo "check_bench: ok (with warnings — regressions below the ${FAIL_RATIO}x gate)"
else
    echo "check_bench: ok"
fi
