package ktg_test

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ktg"
)

// recordingTracer implements the public ktg.Tracer interface.
type recordingTracer struct {
	mu     sync.Mutex
	spans  map[string]int
	events map[string]int
}

func newRecordingTracer() *recordingTracer {
	return &recordingTracer{spans: map[string]int{}, events: map[string]int{}}
}

func (t *recordingTracer) Span(phase string, d time.Duration) {
	t.mu.Lock()
	t.spans[phase]++
	t.mu.Unlock()
}

func (t *recordingTracer) Event(phase, name string, value int64) {
	t.mu.Lock()
	t.events[phase+"/"+name]++
	t.mu.Unlock()
}

func TestFeasibleCountPlumbed(t *testing.T) {
	n := reviewerNetwork(t)
	res, err := n.Search(reviewerQuery, ktg.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Feasible == 0 {
		t.Error("Search dropped Stats.Feasible")
	}
	dr, err := n.SearchDiverse(reviewerQuery, ktg.DiverseOptions{Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Stats.Feasible == 0 {
		t.Error("SearchDiverse dropped Stats.Feasible")
	}
}

func TestSearchStatsTimingBreakdown(t *testing.T) {
	n := reviewerNetwork(t)
	res, err := n.Search(reviewerQuery, ktg.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.ExploreTime <= 0 {
		t.Errorf("ExploreTime = %v, want > 0", s.ExploreTime)
	}
	if len(s.DepthNodes) != reviewerQuery.GroupSize+1 {
		t.Errorf("DepthNodes = %v, want %d entries", s.DepthNodes, reviewerQuery.GroupSize+1)
	}
	var total int64
	for _, c := range s.DepthNodes {
		total += c
	}
	if total != s.Nodes {
		t.Errorf("DepthNodes sums to %d, Nodes = %d", total, s.Nodes)
	}
}

func TestSearchStatsJSONRoundTrip(t *testing.T) {
	n := reviewerNetwork(t)
	res, err := n.Search(reviewerQuery, ktg.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res.Stats)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"nodes"`, `"pruned"`, `"feasible"`, `"compile_ns"`, `"explore_ns"`, `"depth_nodes"`} {
		if !strings.Contains(string(blob), key) {
			t.Errorf("stats JSON missing %s: %s", key, blob)
		}
	}
	var back ktg.SearchStats
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Nodes != res.Stats.Nodes || back.Feasible != res.Stats.Feasible ||
		back.ExploreTime != res.Stats.ExploreTime {
		t.Errorf("round trip changed stats: %+v vs %+v", back, res.Stats)
	}
}

func TestNetworkTracerInjection(t *testing.T) {
	n := reviewerNetwork(t)
	tr := newRecordingTracer()
	n.SetTracer(tr)
	if _, err := n.Search(reviewerQuery, ktg.SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{ktg.TracePhaseCompile, ktg.TracePhaseCandidates, ktg.TracePhaseExplore} {
		if tr.spans[phase] == 0 {
			t.Errorf("network tracer saw no %q span", phase)
		}
	}
	// Index builds route through the same tracer.
	if _, err := n.BuildNLRNL(); err != nil {
		t.Fatal(err)
	}
	if tr.spans[ktg.TracePhaseIndexBuild] == 0 {
		t.Error("network tracer saw no index-build span")
	}

	// A per-search tracer overrides the network one.
	perSearch := newRecordingTracer()
	if _, err := n.Search(reviewerQuery, ktg.SearchOptions{Tracer: perSearch}); err != nil {
		t.Fatal(err)
	}
	if perSearch.spans[ktg.TracePhaseExplore] == 0 {
		t.Error("per-search tracer not used")
	}
}

func TestSetDefaultLoggerSeesSearches(t *testing.T) {
	var buf bytes.Buffer
	h := slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug})
	ktg.SetDefaultLogger(slog.New(h))
	defer ktg.SetDefaultLogger(nil)

	n := reviewerNetwork(t)
	if _, err := n.Search(reviewerQuery, ktg.SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "search start") || !strings.Contains(out, "search done") {
		t.Errorf("default logger missed search lifecycle logs:\n%s", out)
	}
}

func TestProcessMetricsRecorded(t *testing.T) {
	n := reviewerNetwork(t)
	before := ktg.MetricsSnapshot()
	if _, err := n.Search(reviewerQuery, ktg.SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	after := ktg.MetricsSnapshot()
	b, _ := before["ktg_searches_total"].(int64)
	a, _ := after["ktg_searches_total"].(int64)
	if a != b+1 {
		t.Errorf("ktg_searches_total went %d -> %d, want +1", b, a)
	}

	var text strings.Builder
	if err := ktg.WriteMetrics(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ktg_searches_total", "ktg_search_duration_ns", "ktg_search_nodes_total"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("Prometheus exposition missing %s", want)
		}
	}
}

// TestDebugServerEndpoints is the acceptance check: the -debug-addr
// server must answer /metrics with Prometheus text, /debug/vars with
// expvar JSON including the ktg registry, and /debug/pprof/.
func TestDebugServerEndpoints(t *testing.T) {
	addr, stop, err := ktg.StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "# TYPE") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}
	code, body = get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["ktg"]; !ok {
		t.Error("/debug/vars missing the ktg registry")
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}
