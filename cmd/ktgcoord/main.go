// Command ktgcoord is the scatter-gather coordinator for a fleet of
// ktgserver shard workers. It serves the same /v1 surface as a single
// ktgserver — clients need no changes — but answers exact queries by
// partitioning the branch-and-bound candidate frontier across the
// fleet (POST /v1/query/partial, slice i of N per shard), gathering the
// partial answers through resilient per-shard clients (retries with
// backoff and Retry-After, per-shard circuit breakers, optional
// hedging), and merging the shard offer streams deterministically so a
// complete partition reproduces the single-node answer exactly.
//
//	POST /v1/query             scatter-gather KTG search (greedy/brute forwarded whole)
//	POST /v1/diverse           DKTG diverse search, forwarded with failover
//	GET  /v1/datasets          forwarded from the first answering shard
//	GET  /v1/shards            per-shard health, breaker state, client stats
//	POST /v1/cache/invalidate  fanned out to every shard
//	GET  /healthz, /readyz     liveness / readiness
//	GET  /metrics              ktg_coord_* and ktg_client_* on the shared registry
//	GET  /debug/requests[...]  coordinator flight recorder
//	GET  /debug/traces[/{id}]  tail-sampled traces spanning coordinator and shards
//
// Degradation is explicit: when shards die mid-query the coordinator
// answers 200 with the merged best-effort groups flagged
// "partial": true and "shards_failed" ≥ 1; only a fleet-wide failure
// returns an error (503 all_shards_failed). It never silently serves a
// wrong-looking-complete answer.
//
// Tracing spans the fleet: each request's coordinator span propagates
// its W3C traceparent into every shard call, so /debug/traces on the
// coordinator and the shards tell one story under one trace ID.
//
// Example:
//
//	ktgcoord -addr :8090 -shards http://10.0.0.1:8080,http://10.0.0.2:8080
package main

import (
	"context"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ktg"
	"ktg/internal/client"
	"ktg/internal/cliutil"
	"ktg/internal/obs"
	"ktg/internal/shard"
)

func main() {
	var (
		addr           = flag.String("addr", ":8090", "HTTP listen address (host:0 picks a free port)")
		shards         = flag.String("shards", "", "comma-separated shard base URLs, e.g. http://10.0.0.1:8080,http://10.0.0.2:8080 (required)")
		timeout        = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout     = flag.Duration("max-timeout", 2*time.Minute, "ceiling on client-requested timeouts")
		attempts       = flag.Int("shard-attempts", 3, "HTTP attempts per shard call (retries included)")
		attemptTimeout = flag.Duration("shard-attempt-timeout", 10*time.Second, "per-attempt timeout for shard calls")
		hedgeDelay     = flag.Duration("shard-hedge", 0, "launch a hedged second attempt for shard calls slower than this (0 disables)")
		backoffBase    = flag.Duration("shard-backoff", 50*time.Millisecond, "base backoff between shard-call retries")
		drainGrace     = flag.Duration("drain-grace", time.Second, "how long to keep serving after the readiness flip before the listener closes")
		drainTimeout   = flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight scatters")
		verbose        = flag.Bool("v", false, "debug-level structured logging")
		debugAddr      = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this extra address")
		slowQueryMS    = flag.Int("slow-query-ms", 250, "latency (ms) at or above which a request enters the slow-query log (negative disables)")
		recorderSize   = flag.Int("flight-recorder", 256, "completed requests retained by /debug/requests (negative disables)")
		traceStore     = flag.Int("trace-store", 256, "traces retained per tail-sampler tier on /debug/traces (negative disables)")
		traceSample    = flag.Float64("trace-sample", 1.0, "probability of storing an unflagged trace (0 keeps flagged traces only)")
		traceExport    = flag.String("trace-export", "", "append stored trace fragments to this file as OTLP/JSON lines")
	)
	flag.Parse()

	var shardURLs []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			shardURLs = append(shardURLs, u)
		}
	}
	if len(shardURLs) == 0 {
		cliutil.BadUsage("ktgcoord", "-shards must list at least one shard base URL")
	}

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := obs.NewTextLogger(os.Stderr, level)

	recorder := obs.NewFlightRecorder(*recorderSize, 0,
		time.Duration(*slowQueryMS)*time.Millisecond, 0)
	obs.SetDefaultRecorder(recorder)

	var traces *obs.TraceStore
	if *traceStore >= 0 {
		rate := *traceSample
		if rate == 0 {
			rate = -1
		}
		traces = obs.NewTraceStore(obs.TraceStoreConfig{
			KeptCapacity:    *traceStore,
			SampledCapacity: *traceStore,
			SampleRate:      rate,
			SlowThreshold:   recorder.SlowThreshold(),
		})
		if *traceExport != "" {
			exp, err := obs.NewTraceExporter(*traceExport, "ktgcoord")
			if err != nil {
				fatal(logger, err)
			}
			defer exp.Close()
			traces.SetExporter(exp)
			logger.Info("trace export enabled", "path", *traceExport)
		}
		obs.SetDefaultTraceStore(traces)
	}

	if *debugAddr != "" {
		dbg, _, err := ktg.StartDebugServer(*debugAddr)
		if err != nil {
			fatal(logger, err)
		}
		logger.Info("debug server listening", "addr", dbg,
			"endpoints", "/metrics /debug/vars /debug/pprof/")
	}

	co, err := shard.New(shard.Config{
		Shards: shardURLs,
		Client: client.Config{
			MaxAttempts:    *attempts,
			AttemptTimeout: *attemptTimeout,
			BackoffBase:    *backoffBase,
			HedgeDelay:     *hedgeDelay,
			Logger:         logger,
		},
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Logger:         logger,
		Recorder:       recorder,
		TraceStore:     traces,
	})
	if err != nil {
		fatal(logger, err)
	}

	baseCtx, forceCancel := context.WithCancel(context.Background())
	defer forceCancel()
	httpSrv := &http.Server{
		Handler:           co.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(logger, err)
	}
	logger.Info("ktgcoord listening", "addr", ln.Addr().String(),
		"shards", strings.Join(co.Shards(), ","))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fatal(logger, err)
	case <-ctx.Done():
	}

	logger.Info("shutdown signal received; draining", "grace", *drainGrace, "timeout", *drainTimeout)
	co.Drain()
	time.Sleep(*drainGrace)
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		logger.Warn("drain budget exceeded; force-cancelling in-flight scatters", "err", err)
		forceCancel()
		shCtx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		if err := httpSrv.Shutdown(shCtx2); err != nil {
			_ = httpSrv.Close()
		}
	}
	logger.Info("ktgcoord stopped")
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("ktgcoord failed", "err", err)
	os.Exit(1)
}
