// Command ktgcase reproduces the paper's case study (Figure 8): the same
// reviewer-selection query answered by KTG-VKC-DEG, DKTG-Greedy, and the
// TAGQ baseline, printing each group's members, covered query keywords,
// and pairwise hop distances. Members that cover no query keyword — the
// failure mode of TAGQ that KTG rules out by definition — are flagged.
package main

import (
	"flag"
	"fmt"
	"os"

	"ktg/internal/cliutil"
	"ktg/internal/expr"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.02, "DBLP dataset scale factor")
		seed  = flag.Int64("seed", 7, "workload seed")
	)
	flag.Parse()
	cliutil.MustScale("ktgcase", *scale)

	env := expr.NewEnv(*scale, 1, *seed)
	e, _ := expr.Find("fig8")
	rep, err := e.Run(env)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ktgcase:", err)
		os.Exit(1)
	}
	fmt.Print(rep.Format())
}
