// Command ktgstats reports structural statistics of a dataset — degree
// distribution, clustering, components, hop-distance profile, keyword
// popularity — the properties that determine KTG query cost and that the
// synthetic presets are tuned to reproduce (see DESIGN.md §4).
//
// Examples:
//
//	ktgstats -preset gowalla -scale 0.05
//	ktgstats -edges g.edges -attrs g.attrs
//	ktgstats -preset dblp -scale 0.01 -model er    # topology ablation
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"ktg/internal/cliutil"
	"ktg/internal/gen"
	"ktg/internal/graph"
	"ktg/internal/keywords"
)

func main() {
	var (
		preset  = flag.String("preset", "", "generate this preset instead of loading files")
		scale   = flag.Float64("scale", 0.05, "preset scale factor")
		model   = flag.String("model", "social", "topology model: social, erdos-renyi (er), small-world (ws)")
		edges   = flag.String("edges", "", "edge-list file")
		attrs   = flag.String("attrs", "", "keyword attribute file")
		samples = flag.Int("samples", 32, "BFS samples for distance statistics (0 = skip)")
		topK    = flag.Int("top", 10, "how many keyword popularity buckets to print")
	)
	flag.Parse()

	cliutil.MustChoice("ktgstats", "model", *model, "social", "er", "erdos-renyi", "ws", "small-world")
	if *preset != "" {
		cliutil.MustChoice("ktgstats", "preset", *preset, gen.PresetNames()...)
		cliutil.MustScale("ktgstats", *scale)
	}

	g, a, name, err := load(*preset, *scale, *model, *edges, *attrs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ktgstats:", err)
		os.Exit(1)
	}

	fmt.Printf("dataset: %s\n\n", name)
	fmt.Print(graph.Measure(g, *samples))

	hist := graph.DegreeHistogram(g)
	fmt.Printf("\ndegree histogram (log-ish buckets):\n")
	for lo := 0; lo < len(hist); lo = next(lo) {
		hi := next(lo)
		count := 0
		for d := lo; d < hi && d < len(hist); d++ {
			count += hist[d]
		}
		if count > 0 {
			fmt.Printf("  [%4d, %4d): %d\n", lo, hi, count)
		}
	}

	if a != nil && a.Vocabulary().Size() > 0 {
		fmt.Printf("\nkeywords: %d distinct, %.2f per vertex\n",
			a.Vocabulary().Size(), a.AverageKeywordsPerVertex())
		counts := make([]int, a.Vocabulary().Size())
		for v := 0; v < a.NumVertices(); v++ {
			for _, id := range a.Keywords(graph.Vertex(v)) {
				counts[id]++
			}
		}
		type kc struct {
			id keywords.ID
			c  int
		}
		top := make([]kc, 0, len(counts))
		for id, c := range counts {
			top = append(top, kc{keywords.ID(id), c})
		}
		for i := 0; i < *topK && i < len(top); i++ {
			// selection of the i-th most popular
			maxJ := i
			for j := i + 1; j < len(top); j++ {
				if top[j].c > top[maxJ].c {
					maxJ = j
				}
			}
			top[i], top[maxJ] = top[maxJ], top[i]
			fmt.Printf("  #%-3d %-12s carried by %d vertices\n",
				i+1, a.Vocabulary().Name(top[i].id), top[i].c)
		}
	}
}

func next(lo int) int {
	if lo == 0 {
		return 1
	}
	return lo * 2
}

func load(preset string, scale float64, model, edges, attrs string) (graph.Topology, *keywords.Attributes, string, error) {
	if preset != "" {
		c, err := gen.Preset(preset, scale)
		if err != nil {
			return nil, nil, "", err
		}
		m, err := gen.ModelByName(model)
		if err != nil {
			return nil, nil, "", err
		}
		d, err := gen.GenerateWithModel(c, m)
		if err != nil {
			return nil, nil, "", err
		}
		return d.Graph, d.Attrs, fmt.Sprintf("%s (%s)", d.Name, m), nil
	}
	if edges == "" {
		return nil, nil, "", errors.New("need -preset or -edges")
	}
	ef, err := os.Open(edges)
	if err != nil {
		return nil, nil, "", err
	}
	defer ef.Close()
	g, err := graph.ReadEdgeList(ef, 0)
	if err != nil {
		return nil, nil, "", err
	}
	var a *keywords.Attributes
	if attrs != "" {
		af, err := os.Open(attrs)
		if err != nil {
			return nil, nil, "", err
		}
		defer af.Close()
		a, err = keywords.ReadAttributes(af, g.NumVertices(), nil)
		if err != nil {
			return nil, nil, "", err
		}
	}
	return g, a, edges, nil
}
