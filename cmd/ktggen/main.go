// Command ktggen generates a synthetic attributed social network from one
// of the paper's dataset presets and writes it as an edge-list file plus
// a keyword-attribute file, ready for ktgquery and ktgindex.
//
// Usage:
//
//	ktggen -preset gowalla -scale 0.05 -out data/gowalla
//
// writes data/gowalla.edges and data/gowalla.attrs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ktg"
	"ktg/internal/cliutil"
)

func main() {
	var (
		preset = flag.String("preset", "gowalla", "dataset preset: "+strings.Join(ktg.Presets(), ", "))
		scale  = flag.Float64("scale", 0.05, "scale factor in (0,1]; 1 = paper-sized")
		out    = flag.String("out", "", "output path prefix (required)")
	)
	flag.Parse()
	cliutil.MustChoice("ktggen", "preset", *preset, ktg.Presets()...)
	cliutil.MustScale("ktggen", *scale)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "ktggen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	net, err := ktg.GeneratePreset(*preset, *scale)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generated %s\n", net)

	edges, err := os.Create(*out + ".edges")
	if err != nil {
		fatal(err)
	}
	defer edges.Close()
	if err := net.SaveEdgeList(edges); err != nil {
		fatal(err)
	}
	attrs, err := os.Create(*out + ".attrs")
	if err != nil {
		fatal(err)
	}
	defer attrs.Close()
	if err := net.SaveAttributes(attrs); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s.edges and %s.attrs\n", *out, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ktggen:", err)
	os.Exit(1)
}
