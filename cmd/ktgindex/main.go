// Command ktgindex builds, inspects, and persists the NL and NLRNL
// social-distance indexes.
//
// Examples:
//
//	ktgindex -preset gowalla -scale 0.05              # build both, report stats
//	ktgindex -preset dblp -kind nlrnl -save dblp.idx  # persist NLRNL (atomic)
//	ktgindex -preset dblp -kind nl -snapshot nl.snap  # load if valid, else rebuild + re-save
//	ktgindex -edges g.edges -kind nl -check 3,5,2     # is dist(3,5) <= 2?
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ktg"
	"ktg/internal/cliutil"
)

func main() {
	var (
		preset   = flag.String("preset", "", "generate this preset instead of loading files")
		scale    = flag.Float64("scale", 0.05, "preset scale factor")
		edges    = flag.String("edges", "", "edge-list file")
		kind     = flag.String("kind", "both", "index kind: nl, nlrnl, both")
		save     = flag.String("save", "", "persist the built index to this file, crash-atomically (single -kind only)")
		snapshot = flag.String("snapshot", "", "load the index from this snapshot when valid, rebuild and re-save it otherwise (single -kind only)")
		check    = flag.String("check", "", "u,v,k triple: report whether dist(u,v) <= k")
		debug    = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while building")
	)
	flag.Parse()

	cliutil.MustChoice("ktgindex", "kind", *kind, "nl", "nlrnl", "both")
	if *preset != "" {
		cliutil.MustChoice("ktgindex", "preset", *preset, ktg.Presets()...)
		cliutil.MustScale("ktgindex", *scale)
	}
	if *snapshot != "" && *kind == "both" {
		cliutil.BadUsage("ktgindex", "-snapshot needs a single -kind (nl or nlrnl)")
	}
	if *snapshot != "" && *save != "" {
		cliutil.BadUsage("ktgindex", "-snapshot already re-saves; drop -save")
	}

	if *debug != "" {
		addr, _, err := ktg.StartDebugServer(*debug)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ktgindex: debug server on %s (/metrics /debug/vars /debug/pprof/)\n", addr)
	}

	net, err := loadNetwork(*preset, *scale, *edges)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s\n", net)

	var built []ktg.DistanceIndex
	switch *kind {
	case "nl", "both":
		start := time.Now()
		var nl *ktg.NLIndex
		if *snapshot != "" {
			var out ktg.SnapshotOutcome
			nl, out, err = net.LoadOrBuildNL(*snapshot, 0)
			reportOutcome(out, *snapshot)
		} else {
			nl, err = net.BuildNL(0)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("NL:    h=%d, %d entries, %s, ready in %v\n",
			nl.H(), nl.Entries(), formatBytes(nl.SpaceBytes()), time.Since(start).Round(time.Millisecond))
		built = append(built, nl)
		if *save != "" && *kind == "nl" {
			persist(*save, nl.SaveFile)
		}
		if *kind == "nl" {
			break
		}
		fallthrough
	case "nlrnl":
		start := time.Now()
		var x *ktg.NLRNLIndex
		if *snapshot != "" {
			var out ktg.SnapshotOutcome
			x, out, err = net.LoadOrBuildNLRNL(*snapshot)
			reportOutcome(out, *snapshot)
		} else {
			x, err = net.BuildNLRNL()
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("NLRNL: %d entries, %s, ready in %v\n",
			x.Entries(), formatBytes(x.SpaceBytes()), time.Since(start).Round(time.Millisecond))
		built = append(built, x)
		if *save != "" && *kind == "nlrnl" {
			persist(*save, x.SaveFile)
		}
	default:
		fatal(fmt.Errorf("unknown index kind %q", *kind))
	}

	if *check != "" {
		parts := strings.Split(*check, ",")
		if len(parts) != 3 {
			fatal(errors.New("-check wants u,v,k"))
		}
		u, err1 := strconv.ParseUint(parts[0], 10, 32)
		v, err2 := strconv.ParseUint(parts[1], 10, 32)
		k, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			fatal(errors.New("-check wants numeric u,v,k"))
		}
		for _, idx := range built {
			fmt.Printf("%s: dist(%d,%d) <= %d: %v\n",
				idx.Name(), u, v, k, idx.Within(uint32(u), uint32(v), k))
		}
	}
}

func loadNetwork(preset string, scale float64, edges string) (*ktg.Network, error) {
	if preset != "" {
		return ktg.GeneratePreset(preset, scale)
	}
	if edges == "" {
		return nil, errors.New("need -preset or -edges")
	}
	f, err := os.Open(edges)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ktg.LoadNetwork(f, nil)
}

// persist writes the index crash-atomically via its SaveFile method.
func persist(path string, save func(path string) error) {
	if err := save(path); err != nil {
		fatal(err)
	}
	fmt.Printf("saved index to %s\n", path)
}

// reportOutcome explains how -snapshot resolved: used as-is, or why it
// forced a rebuild.
func reportOutcome(out ktg.SnapshotOutcome, path string) {
	switch {
	case out.Loaded:
		fmt.Printf("snapshot %s loaded\n", path)
	case out.Saved:
		fmt.Printf("snapshot %s unusable (%s); index rebuilt and re-saved\n", path, out.Reason)
	default:
		fmt.Printf("snapshot %s unusable (%s); index rebuilt (re-save failed: %v)\n", path, out.Reason, out.SaveErr)
	}
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ktgindex:", err)
	os.Exit(1)
}
