// Command ktgbench regenerates the paper's evaluation tables and figures
// (Section VII) on synthetic stand-ins for the published datasets. Each
// experiment prints the rows the corresponding figure plots: mean latency
// per algorithm per swept parameter value, or index space/build time.
//
// Usage:
//
//	ktgbench -exp fig3 -scale 0.02 -queries 20
//	ktgbench -exp all -json out/         # writes out/BENCH_<id>.json per experiment
//	ktgbench -exp fig4 -debug-addr :6060 # scrape /metrics, profile via /debug/pprof
//	ktgbench -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ktg"
	"ktg/internal/cliutil"
	"ktg/internal/expr"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see -list) or \"all\"")
		scale   = flag.Float64("scale", 0.01, "dataset scale factor in (0,1]")
		queries = flag.Int("queries", 10, "random queries per measurement point (paper: 100)")
		seed    = flag.Int64("seed", 7, "workload seed")
		budget  = flag.Int64("maxnodes", 1_000_000, "per-query node budget (0 = unlimited)")
		maxTime = flag.Duration("maxtime", 2*time.Second, "per-query wall-clock budget (0 = unlimited)")
		capped  = flag.Bool("capped", false, "use the improved |W_Q|-capped prune bound instead of the paper's")
		quiet   = flag.Bool("quiet", false, "suppress per-point progress on stderr")
		csvPath = flag.String("csv", "", "also append measurement rows to this CSV file")
		jsonDir = flag.String("json", "", "also write machine-readable BENCH_<exp>.json files into this directory")
		force   = flag.Bool("force", false, "overwrite BENCH_<exp>.json baselines even when their dataset fingerprint differs")
		dbgAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range expr.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	expIDs := []string{"all"}
	for _, e := range expr.All() {
		expIDs = append(expIDs, e.ID)
	}
	cliutil.MustChoice("ktgbench", "exp", *exp, expIDs...)
	cliutil.MustScale("ktgbench", *scale)

	if *dbgAddr != "" {
		addr, _, err := ktg.StartDebugServer(*dbgAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ktgbench: debug server: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ktgbench: debug server on %s (/metrics /debug/vars /debug/pprof/)\n", addr)
	}

	env := expr.NewEnv(*scale, *queries, *seed)
	env.MaxNodes = *budget
	env.MaxTime = *maxTime
	env.PaperBound = !*capped
	if !*quiet {
		env.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	run := func(e expr.Experiment) {
		fmt.Printf("# running %s (%s) — scale %.4g, %d queries/point\n",
			e.ID, e.Title, *scale, *queries)
		start := time.Now()
		rep, err := e.Run(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ktgbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		fmt.Printf("# %s finished in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *csvPath != "" && len(rep.Rows) > 0 {
			f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ktgbench: opening CSV: %v\n", err)
				os.Exit(1)
			}
			if err := expr.WriteCSV(f, rep.Rows); err != nil {
				fmt.Fprintf(os.Stderr, "ktgbench: writing CSV: %v\n", err)
			}
			f.Close()
		}
		if *jsonDir != "" {
			if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "ktgbench: creating JSON dir: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*jsonDir, "BENCH_"+e.ID+".json")
			// A baseline measured on different data is not comparable to
			// this run: silently replacing it would make every future
			// perf diff lie. Refuse unless -force says the swap is meant.
			if prev, err := readBaseline(path); err == nil && prev.Fingerprint != "" {
				now := expr.DatasetFingerprint(env, rep)
				if prev.Fingerprint != now && !*force {
					fmt.Fprintf(os.Stderr,
						"ktgbench: %s holds a baseline for different data:\n  baseline %s\n  this run %s\nrerun with -force to replace it\n",
						path, prev.Fingerprint, now)
					os.Exit(1)
				}
			}
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ktgbench: creating %s: %v\n", path, err)
				os.Exit(1)
			}
			if err := expr.WriteBenchJSON(f, env, rep); err != nil {
				fmt.Fprintf(os.Stderr, "ktgbench: writing %s: %v\n", path, err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "ktgbench: wrote %s\n", path)
		}
	}

	if *exp == "all" {
		for _, e := range expr.All() {
			run(e)
		}
		return
	}
	e, _ := expr.Find(*exp)
	run(e)
}

// readBaseline loads an existing BENCH_*.json, if any.
func readBaseline(path string) (*expr.BenchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep expr.BenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}
