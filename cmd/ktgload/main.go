// Command ktgload replays a query workload against a running ktgserver
// through the resilient internal/client and reports latency quantiles
// plus resilience counters (retries, Retry-After honors, hedge wins,
// breaker trips). It is the measurement half of the chaos story: point
// it at a `ktgserver -chaos ...` and it proves — or disproves — that
// the client absorbs a configured fault rate without losing queries.
//
// The workload comes from internal/workload: either regenerated
// deterministically from the same preset/scale the server loaded (the
// preset generator is deterministic, so keyword ids line up), or
// replayed from a file written by workload.SaveQueries.
//
// With -mutate-rate the replay becomes a mixed read/write stream:
// that fraction of operations are POST /v1/edges batches (generated
// against a local mirror of the server's graph so every op is
// effective), and the report adds mutation latency quantiles, applied/
// ignored counts, the highest epoch reached, and epoch-skew retries.
//
// Usage:
//
//	ktgload -addr 127.0.0.1:8080 -preset brightkite -scale 0.02 -queries 50
//	ktgload -addr :8080 -replay queries.txt -concurrency 8 -hedge-delay 25ms
//	ktgload -addr :8080 -mutate-rate 0.3 -mutate-batch 8
//
// Exit status is non-zero if any query is lost (no answer within
// -patience) or any answer is malformed (wrong group size, covered
// keywords outside the query, non-positive QKC bound).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ktg/internal/client"
	"ktg/internal/cliutil"
	"ktg/internal/gen"
	"ktg/internal/obs"
	"ktg/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "server address (host:port or full http:// URL)")
		preset      = flag.String("preset", "brightkite", "dataset preset the server is serving (keywords are sampled from a local regeneration)")
		scale       = flag.Float64("scale", 0.02, "preset scale factor; must match the server's -scale")
		replayPath  = flag.String("replay", "", "replay query keyword ids from this workload.SaveQueries file instead of sampling")
		queries     = flag.Int("queries", 50, "number of queries to run")
		concurrency = flag.Int("concurrency", 4, "concurrent in-flight queries")
		seed        = flag.Int64("seed", 42, "workload + jitter seed")
		groupSize   = flag.Int("p", workload.DefaultParams.P, "group size p")
		tenuity     = flag.Int("k", workload.DefaultParams.K, "tenuity constraint k")
		kwCount     = flag.Int("w", workload.DefaultParams.W, "query keyword count |W_Q|")
		topN        = flag.Int("n", 0, "top-N (0 = single-group /v1/query)")
		diverse     = flag.Bool("diverse", false, "hit /v1/diverse instead of /v1/query (implies -n if unset)")
		algorithm   = flag.String("algorithm", "", "algorithm override passed to the server (empty = server default)")
		patience    = flag.Duration("patience", 2*time.Minute, "total wall-clock budget per query, outer retries included")
		attemptTO   = flag.Duration("attempt-timeout", 10*time.Second, "per-HTTP-attempt timeout")
		maxAttempts = flag.Int("max-attempts", 6, "client attempts per logical call")
		hedgeDelay  = flag.Duration("hedge-delay", 0, "launch a hedged second attempt after this delay (0 = off)")
		verbose     = flag.Bool("v", false, "log every query result")
		traceExport = flag.String("trace-export", "", "append the client-side trace of every query (attempts, hedges, retries) to this file as OTLP/JSON lines")
		compareAddr = flag.String("compare-addr", "", "also run every query against this second endpoint and require identical groups (scatter-gather verification)")
		mutateRate  = flag.Float64("mutate-rate", 0, "fraction of operations that are edge-mutation batches instead of queries (requires the server to run -mutable)")
		mutateBatch = flag.Int("mutate-batch", 8, "edge ops per mutation batch when -mutate-rate > 0")
		epochFile   = flag.String("epoch-file", "", "after the run, record the highest acked mutation epoch in this file (requires -mutate-rate > 0; pairs with -require-epoch-file across a server restart)")
		reqEpochF   = flag.String("require-epoch-file", "", "before the run, require the server's dataset epoch to be >= the epoch recorded in this file; a lower epoch means an acked mutation vanished across a restart (exit 1)")
	)
	flag.Parse()
	cliutil.MustScale("ktgload", *scale)
	if *queries <= 0 || *concurrency <= 0 {
		cliutil.BadUsage("ktgload", "-queries and -concurrency must be positive")
	}
	if *mutateRate < 0 || *mutateRate > 1 {
		cliutil.BadUsage("ktgload", "-mutate-rate must be in [0,1]")
	}
	if *mutateRate > 0 && *mutateBatch <= 0 {
		cliutil.BadUsage("ktgload", "-mutate-batch must be positive")
	}
	if *diverse && *topN <= 0 {
		*topN = workload.DefaultParams.N
	}
	if *epochFile != "" && *mutateRate <= 0 {
		cliutil.BadUsage("ktgload", "-epoch-file requires -mutate-rate > 0")
	}

	base := normalizeBase(*addr)

	kwSets, ds, err := buildWorkload(*replayPath, *preset, *scale, *seed, *queries, *kwCount)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ktgload: %v\n", err)
		os.Exit(1)
	}

	// -mutate-rate turns the replay into a mixed read/write stream: a
	// seeded coin flip marks some operation slots as edge-mutation
	// batches. The Mutator mirrors the server's regenerated graph so
	// every generated op is effective (inserts pick absent edges,
	// deletes pick present ones) — the stream exercises real epoch
	// churn instead of degenerating into ignored duplicates.
	var (
		mut        *workload.Mutator
		isMutation []bool
	)
	if *mutateRate > 0 {
		mut = workload.NewMutator(ds.Graph, *seed+2)
		opRand := rand.New(rand.NewSource(*seed + 3))
		isMutation = make([]bool, len(kwSets))
		for i := range isMutation {
			isMutation[i] = opRand.Float64() < *mutateRate
		}
	}

	cl, err := client.New(client.Config{
		BaseURL: base,
		// The load driver retries hard on purpose: its job is proving no
		// query is lost, so the patience loop below re-spends budget the
		// chaos faults burn. The budget still exists to bound storms.
		MaxAttempts:    *maxAttempts,
		AttemptTimeout: *attemptTO,
		HedgeDelay:     *hedgeDelay,
		RetryBudget:    -1, // unlimited: lost-query detection owns pacing
		Seed:           *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ktgload: %v\n", err)
		os.Exit(1)
	}
	waitHealthy(cl)
	if *reqEpochF != "" {
		requireEpoch(base, *preset, *reqEpochF)
	}

	// -compare-addr runs every query against a second endpoint (e.g. a
	// scatter-gather coordinator vs a direct single shard) and requires
	// the answers' groups to be identical. This is the verify.sh proof
	// that the distributed path reproduces the single-node path.
	var cmpCl *client.Client
	if *compareAddr != "" {
		cmpCl, err = client.New(client.Config{
			BaseURL:        normalizeBase(*compareAddr),
			MaxAttempts:    *maxAttempts,
			AttemptTimeout: *attemptTO,
			HedgeDelay:     *hedgeDelay,
			RetryBudget:    -1,
			Seed:           *seed + 1,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ktgload: %v\n", err)
			os.Exit(1)
		}
		waitHealthy(cmpCl)
	}

	// Every logical query runs under its own root span so lost queries
	// are attributable by trace ID even when no attempt ever answered;
	// with -trace-export the client-side fragments (call span + attempt
	// children) are also written out as OTLP/JSON.
	baseCtx := context.Background()
	var exporter *obs.TraceExporter
	if *traceExport != "" {
		exp, err := obs.NewTraceExporter(*traceExport, "ktgload")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ktgload: %v\n", err)
			os.Exit(1)
		}
		exporter = exp
		traces := obs.NewTraceStore(obs.TraceStoreConfig{})
		traces.SetExporter(exp)
		baseCtx = obs.ContextWithTraceStore(baseCtx, traces)
	}

	type result struct {
		idx      int
		latency  time.Duration
		resp     *client.Response
		mresp    *client.MutationResponse
		mutation bool
		traceID  string
		err      error
		mismatch string
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results = make([]result, len(kwSets))
		next    = make(chan int)
	)
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if isMutation != nil && isMutation[i] {
					batch := mut.Batch(*mutateBatch, 0.5)
					mreq := &client.MutationRequest{
						Dataset: *preset,
						Edges:   make([]client.EdgeOp, len(batch)),
					}
					for j, op := range batch {
						name := "delete"
						if op.Insert {
							name = "insert"
						}
						mreq.Edges[j] = client.EdgeOp{Op: name, U: int64(op.U), V: int64(op.V)}
					}
					t0 := time.Now()
					mctx, mspan := obs.StartSpan(baseCtx, "ktgload mutate")
					mspan.SetAttr("query_index", strconv.Itoa(i))
					mresp, err := mutateWithPatience(mctx, cl, mreq, *patience)
					if err != nil {
						mspan.SetError(err.Error())
					}
					mspan.End()
					r := result{idx: i, latency: time.Since(t0), mresp: mresp, mutation: true, traceID: mspan.TraceID(), err: err}
					mu.Lock()
					results[i] = r
					mu.Unlock()
					if *verbose {
						if err != nil {
							fmt.Fprintf(os.Stderr, "ktgload: mutation %d LOST after %v (trace %s): %v\n",
								i, r.latency, r.traceID, err)
						} else {
							fmt.Fprintf(os.Stderr, "ktgload: mutation %d ok in %v (epoch=%d applied=%d ignored=%d request_id=%s)\n",
								i, r.latency, mresp.Epoch, mresp.Applied, mresp.Ignored, mresp.RequestID)
						}
					}
					continue
				}
				req := &client.Request{
					Dataset:   *preset,
					Keywords:  kwSets[i],
					GroupSize: *groupSize,
					Tenuity:   *tenuity,
					TopN:      *topN,
					Algorithm: *algorithm,
				}
				t0 := time.Now()
				qctx, qspan := obs.StartSpan(baseCtx, "ktgload query")
				qspan.SetAttr("query_index", strconv.Itoa(i))
				resp, err := runWithPatience(qctx, cl, req, *diverse, *patience)
				if err != nil {
					qspan.SetError(err.Error())
				}
				qspan.End()
				r := result{idx: i, latency: time.Since(t0), resp: resp, traceID: qspan.TraceID(), err: err}
				if cmpCl != nil && err == nil {
					r.mismatch = compareAnswers(qctx, cmpCl, req, *diverse, *patience, resp)
				}
				mu.Lock()
				results[i] = r
				mu.Unlock()
				if *verbose {
					if err != nil {
						fmt.Fprintf(os.Stderr, "ktgload: query %d LOST after %v (trace %s): %v\n",
							i, r.latency, r.traceID, err)
					} else {
						fmt.Fprintf(os.Stderr, "ktgload: query %d ok in %v (attempts=%d hedged=%v groups=%d request_id=%s trace=%s)\n",
							i, r.latency, resp.Attempts, resp.Hedged, len(resp.Groups), resp.RequestID, resp.TraceID)
					}
				}
			}
		}()
	}
	for i := range kwSets {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	lost, malformed, mismatched := 0, 0, 0
	latencies := make([]time.Duration, 0, len(results))
	var ms mutationSummary
	for i, r := range results {
		if r.err != nil {
			lost++
			if r.mutation {
				fmt.Fprintf(os.Stderr, "ktgload: LOST mutation %d (trace %s): %v\n", i, r.traceID, r.err)
			} else {
				fmt.Fprintf(os.Stderr, "ktgload: LOST query %d (keywords %v, trace %s): %v\n",
					i, kwSets[i], r.traceID, r.err)
			}
			continue
		}
		if r.mutation {
			ms.latencies = append(ms.latencies, r.latency)
			ms.applied += r.mresp.Applied
			ms.ignored += r.mresp.Ignored
			if r.mresp.Epoch > ms.maxEpoch {
				ms.maxEpoch = r.mresp.Epoch
			}
			continue
		}
		latencies = append(latencies, r.latency)
		if msg := validate(r.resp, kwSets[i], *groupSize); msg != "" {
			malformed++
			fmt.Fprintf(os.Stderr, "ktgload: MALFORMED answer to query %d: %s\n", i, msg)
		}
		if r.mismatch != "" {
			mismatched++
			fmt.Fprintf(os.Stderr, "ktgload: MISMATCH on query %d vs %s: %s\n", i, *compareAddr, r.mismatch)
		}
	}

	report(os.Stdout, elapsed, latencies, cl.Stats(), lost, malformed, len(kwSets))
	if mut != nil {
		ms.report(os.Stdout, cl.Stats())
	}
	if cmpCl != nil {
		fmt.Fprintf(os.Stdout, "  compare  endpoint=%s mismatches=%d\n", cmpCl.Target(), mismatched)
	}
	// Explicit close (not deferred): the os.Exit below would skip defers
	// and could truncate the final export line.
	if exporter != nil {
		_ = exporter.Close()
	}
	if lost > 0 || malformed > 0 || mismatched > 0 {
		os.Exit(1)
	}
	// Only after a fully clean run: every epoch up to maxEpoch was acked,
	// so a restarted server serving anything lower has lost durability.
	if *epochFile != "" {
		if err := os.WriteFile(*epochFile, []byte(strconv.FormatUint(ms.maxEpoch, 10)+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ktgload: writing -epoch-file: %v\n", err)
			os.Exit(1)
		}
	}
}

// requireEpoch enforces the durability contract across a restart: the
// dataset's served epoch must be at least the one a previous run
// recorded with -epoch-file. Each acked effective batch advances the
// epoch by exactly one, so a lower epoch can only mean an acked
// mutation is missing — a hard failure, not a warning. The poll rides
// out WAL replay (503s from /v1/datasets while the gate is up).
func requireEpoch(base, dataset, path string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ktgload: reading -require-epoch-file: %v\n", err)
		os.Exit(1)
	}
	want, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ktgload: parsing -require-epoch-file %s: %v\n", path, err)
		os.Exit(1)
	}
	deadline := time.Now().Add(60 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		got, err := datasetEpoch(base, dataset)
		if err == nil {
			if got < want {
				fmt.Fprintf(os.Stderr, "ktgload: acked mutation missing after restart: dataset %q serves epoch %d, a previous run acked epoch %d\n",
					dataset, got, want)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "ktgload: epoch continuity ok (served %d >= acked %d)\n", got, want)
			return
		}
		lastErr = err
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "ktgload: -require-epoch-file: /v1/datasets never became ready: %v\n", lastErr)
	os.Exit(1)
}

// datasetEpoch reads one dataset's live epoch from /v1/datasets.
func datasetEpoch(base, dataset string) (uint64, error) {
	res, err := http.Get(base + "/v1/datasets")
	if err != nil {
		return 0, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("/v1/datasets: status %d", res.StatusCode)
	}
	var wire struct {
		Datasets []struct {
			Name  string `json:"name"`
			Epoch uint64 `json:"epoch"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(res.Body).Decode(&wire); err != nil {
		return 0, err
	}
	for _, d := range wire.Datasets {
		if d.Name == dataset {
			return d.Epoch, nil
		}
	}
	return 0, fmt.Errorf("dataset %q not in /v1/datasets", dataset)
}

// normalizeBase turns a host:port or :port address into a base URL.
func normalizeBase(addr string) string {
	if strings.Contains(addr, "://") {
		return addr
	}
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	return "http://" + addr
}

// compareAnswers re-runs the query against the comparison endpoint and
// returns a description of any semantic difference in the answers.
// Groups are compared as canonical JSON: members, covered keywords and
// scores must all agree, which is exactly the coordinator's exactness
// contract. Partiality must agree too — a partial answer on one side
// only is a silent-degradation bug, not a tie.
func compareAnswers(ctx context.Context, cl *client.Client, req *client.Request, diverse bool, patience time.Duration, want *client.Response) string {
	got, err := runWithPatience(ctx, cl, req, diverse, patience)
	if err != nil {
		return fmt.Sprintf("comparison endpoint lost the query: %v", err)
	}
	if want.Partial != got.Partial {
		return fmt.Sprintf("partial flag differs: %v vs %v", want.Partial, got.Partial)
	}
	wantJSON, err := json.Marshal(want.Groups)
	if err != nil {
		return err.Error()
	}
	gotJSON, err := json.Marshal(got.Groups)
	if err != nil {
		return err.Error()
	}
	if string(wantJSON) != string(gotJSON) {
		return fmt.Sprintf("groups differ:\n  primary %s\n  compare %s", wantJSON, gotJSON)
	}
	return ""
}

// buildWorkload produces the query keyword-name sets: replayed from a
// file, or sampled from a local regeneration of the server's preset
// (gen.GeneratePreset is deterministic, so the vocabulary matches).
// The regenerated dataset is returned too so -mutate-rate can mirror
// the server's graph.
func buildWorkload(replayPath, preset string, scale float64, seed int64, queries, kwCount int) ([][]string, *gen.Dataset, error) {
	ds, err := gen.GeneratePreset(preset, scale)
	if err != nil {
		return nil, nil, err
	}
	g := workload.NewGenerator(ds, seed)
	var sets [][]string
	if replayPath != "" {
		f, err := os.Open(replayPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		batch, err := workload.LoadQueries(f)
		if err != nil {
			return nil, nil, err
		}
		for _, ids := range batch {
			sets = append(sets, g.KeywordNames(ids))
		}
		return sets, ds, nil
	}
	for _, ids := range g.Batch(queries, kwCount) {
		sets = append(sets, g.KeywordNames(ids))
	}
	return sets, ds, nil
}

// waitHealthy polls /healthz briefly so a freshly exec'd server does
// not count startup races as lost queries.
func waitHealthy(cl *client.Client) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if err := cl.Health(context.Background()); err == nil {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	// Not fatal: the query loop's own retries give the final verdict.
	fmt.Fprintln(os.Stderr, "ktgload: warning: server not healthy after 15s, proceeding anyway")
}

// runWithPatience keeps re-issuing one logical call until it succeeds
// or the patience budget expires. The client already retries within a
// call; this outer loop additionally rides out breaker-open windows
// and exhausted attempt counts, because the driver's contract is "no
// query may be lost while the server is actually up". ctx carries the
// query's root span, so every re-issued call traces under one ID.
func runWithPatience(ctx context.Context, cl *client.Client, req *client.Request, diverse bool, patience time.Duration) (*client.Response, error) {
	ctx, cancel := context.WithTimeout(ctx, patience)
	defer cancel()
	var lastErr error
	for {
		var (
			resp *client.Response
			err  error
		)
		if diverse {
			resp, err = cl.Diverse(ctx, req)
		} else {
			resp, err = cl.Query(ctx, req)
		}
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, fmt.Errorf("patience %v exhausted: %w", patience, lastErr)
		}
		// Breaker-open rejections are instant; pause so the cooldown can
		// elapse instead of spinning.
		if errors.Is(err, client.ErrCircuitOpen) {
			select {
			case <-time.After(250 * time.Millisecond):
			case <-ctx.Done():
				return nil, fmt.Errorf("patience %v exhausted: %w", patience, lastErr)
			}
		}
	}
}

// mutateWithPatience keeps re-sending one edge batch until it lands or
// the patience budget expires. Re-sending is safe: edge ops are
// idempotent, so a batch that already applied re-applies as all-ignored
// without minting another epoch. Structured 4xx rejections fail fast —
// the identical batch can never succeed, so retrying it would only hide
// a contract bug.
func mutateWithPatience(ctx context.Context, cl *client.Client, req *client.MutationRequest, patience time.Duration) (*client.MutationResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, patience)
	defer cancel()
	var lastErr error
	for {
		resp, err := cl.MutateEdges(ctx, req)
		if err == nil {
			return resp, nil
		}
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.Status < 500 && apiErr.Status != http.StatusTooManyRequests {
			return nil, err
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, fmt.Errorf("patience %v exhausted: %w", patience, lastErr)
		}
		if errors.Is(err, client.ErrCircuitOpen) {
			select {
			case <-time.After(250 * time.Millisecond):
			case <-ctx.Done():
				return nil, fmt.Errorf("patience %v exhausted: %w", patience, lastErr)
			}
		}
	}
}

// mutationSummary aggregates the write half of a mixed replay.
type mutationSummary struct {
	latencies []time.Duration
	applied   int
	ignored   int
	maxEpoch  uint64
}

func (ms *mutationSummary) report(w *os.File, st client.Stats) {
	sort.Slice(ms.latencies, func(i, j int) bool { return ms.latencies[i] < ms.latencies[j] })
	q := func(p float64) time.Duration {
		if len(ms.latencies) == 0 {
			return 0
		}
		return ms.latencies[int(p*float64(len(ms.latencies)-1))]
	}
	fmt.Fprintf(w, "  mutation n=%d p50=%v p95=%v p99=%v applied=%d ignored=%d max_epoch=%d epoch_skew_retries=%d\n",
		len(ms.latencies),
		q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond), q(0.99).Round(time.Microsecond),
		ms.applied, ms.ignored, ms.maxEpoch, st.EpochSkewRetries)
}

// validate checks structural well-formedness of an answer: group sizes
// respect p, covered keywords are a subset of the query's, and QKC
// fractions are sane. (Semantic equivalence to a fault-free run is the
// soak test's job; the driver checks what it can without ground truth.)
func validate(resp *client.Response, kws []string, p int) string {
	asked := make(map[string]bool, len(kws))
	for _, k := range kws {
		asked[k] = true
	}
	for gi, g := range resp.Groups {
		if len(g.Members) == 0 || len(g.Members) > p {
			return fmt.Sprintf("group %d has %d members, want 1..%d", gi, len(g.Members), p)
		}
		seen := make(map[int]bool, len(g.Members))
		for _, m := range g.Members {
			if seen[m] {
				return fmt.Sprintf("group %d repeats member %d", gi, m)
			}
			seen[m] = true
		}
		for _, k := range g.Covered {
			if !asked[k] {
				return fmt.Sprintf("group %d claims to cover %q, which was never asked", gi, k)
			}
		}
		if g.QKC < 0 || g.QKC > 1 {
			return fmt.Sprintf("group %d has QKC %v outside [0,1]", gi, g.QKC)
		}
	}
	return ""
}

// report prints the human summary: throughput, latency quantiles, and
// the resilience counters that show what the run cost.
func report(w *os.File, elapsed time.Duration, lats []time.Duration, st client.Stats, lost, malformed, total int) {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(p*float64(len(lats)-1))]
	}
	fmt.Fprintf(w, "ktgload: %d queries in %v (%.1f q/s), %d lost, %d malformed\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), lost, malformed)
	fmt.Fprintf(w, "  latency  p50=%v p95=%v p99=%v max=%v\n",
		q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), q(1.0).Round(time.Microsecond))
	fmt.Fprintf(w, "  client   attempts=%d retries=%d retry_after_honored=%d hedges=%d hedge_wins=%d\n",
		st.Attempts, st.Retries, st.RetryAfterHonored, st.Hedges, st.HedgeWins)
	fmt.Fprintf(w, "  breaker  trips=%d rejects=%d   degraded=%d partial=%d errors=%d\n",
		st.BreakerTrips, st.BreakerRejects, st.Degraded, st.Partial, st.Errors)
}
