// Command ktgserver serves KTG and DKTG queries over HTTP/JSON. It
// loads one or more datasets (generated presets and/or an edge-list +
// attribute file pair), builds a shared distance index per dataset, and
// exposes:
//
//	POST /v1/query             exact or greedy KTG search
//	POST /v1/diverse           DKTG-Greedy diverse search
//	GET  /v1/datasets          served datasets and their stats
//	POST /v1/cache/invalidate  drop all cached results
//	GET  /healthz, /readyz     liveness / readiness
//	GET  /metrics              Prometheus metrics (shared obs registry)
//	GET  /debug/requests       flight recorder: recent completed requests
//	GET  /debug/requests/slow  slow-query log (top-K by latency, sliding window)
//	GET  /debug/inflight       currently executing requests with elapsed time
//	GET  /debug/traces         tail-sampled distributed-trace store
//	GET  /debug/traces/{id}    one trace (JSON; ?format=waterfall for ASCII)
//
// Every request carries a request ID: a well-formed inbound
// X-Request-Id is honored, anything else replaced with a generated ID;
// the ID is echoed in the X-Request-Id response header and stamped on
// every log line the request produces, down into the search core. The
// flight recorder retains the last -flight-recorder completed requests
// (phase spans, search stats, queue wait, outcome) and an
// always-retained slow-query log of requests at or above
// -slow-query-ms; both are served on the routes above and on the
// -debug-addr surface.
//
// Distributed tracing is always on for /v1/* requests: a well-formed
// inbound W3C traceparent is continued (so client attempts and server
// spans share one trace), a fresh trace is started otherwise, and the
// trace ID is echoed as X-Trace-Id and recorded on flight-recorder
// entries. Completed traces land in a bounded tail-sampled store
// (-trace-store entries per tier): traces that errored, degraded, or
// ran at or over -slow-query-ms are always kept, the rest are sampled
// at -trace-sample. -trace-export appends every stored fragment to a
// file as OTLP/JSON lines for offline analysis.
//
// Admission control bounds concurrent searches (-workers) and the wait
// queue (-queue); overflow is rejected with 429 + Retry-After. Complete
// results land in an LRU cache (-cache) keyed by the canonicalized
// query; identical concurrent queries share one search. Every request
// carries a deadline (its timeout_ms, else -timeout, capped by
// -max-timeout) that cancels the search core mid-flight.
//
// With -snapshots DIR each dataset's distance index is loaded from a
// checksummed snapshot (<dir>/<dataset>.<kind>.snap) when it is valid
// for the served graph, and rebuilt then re-saved crash-atomically when
// it is missing, corrupt, version-skewed, or fingerprint-mismatched —
// snapshot damage costs a rebuild, never a failed startup. Under
// sustained overload, exact /v1/query searches that waited longer than
// -degrade-wait for a worker slot run the greedy algorithm instead and
// say so via "degraded": true.
//
// SIGINT/SIGTERM drains gracefully: readiness flips and new queries get
// 503 while the listener stays open for -drain-grace, admitted searches
// finish (up to -drain-timeout), then any stragglers are
// force-cancelled via their contexts.
//
// Examples:
//
//	ktgserver -addr :8080 -presets brightkite,gowalla -scale 0.05
//	ktgserver -addr 127.0.0.1:0 -edges g.edges -attrs g.attrs -dataset-name prod
//	ktgserver -presets dblp -index nl -workers 4 -queue 16 -debug-addr :6060
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"ktg"
	"ktg/internal/chaos"
	"ktg/internal/cliutil"
	"ktg/internal/obs"
	"ktg/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address (host:0 picks a free port)")
		presets      = flag.String("presets", "brightkite", "comma-separated dataset presets to serve ("+strings.Join(ktg.Presets(), ", ")+"); empty to serve files only")
		scale        = flag.Float64("scale", 0.02, "preset scale factor")
		edges        = flag.String("edges", "", "edge-list file for an additional file-backed dataset")
		attrs        = flag.String("attrs", "", "keyword attribute file (with -edges)")
		dsName       = flag.String("dataset-name", "dataset", "name for the file-backed dataset")
		indexKind    = flag.String("index", "nlrnl", "shared distance index per dataset: bfs, nl, nlrnl")
		mutable      = flag.Bool("mutable", false, "serve datasets in live-mutation mode: POST /v1/edges applies edge batches via epoch-swapped copy-on-write (bfs, nl, nlrnl indexes)")
		walDir       = flag.String("wal-dir", "", "durable-mutation mode (requires -mutable): write-ahead-log every acked edge batch under <dir>/<dataset>/ and recover the exact pre-crash epoch on restart")
		walSync      = flag.String("wal-sync", "always", "WAL fsync policy: always (ack = durable), interval (background fsync), off (OS decides)")
		walCkptEvery = flag.Uint64("wal-checkpoint-every", 64, "snapshot the live graph and retire WAL segments every N epochs (0 disables checkpointing)")
		snapshots    = flag.String("snapshots", "", "directory for index snapshots: load on startup when valid, rebuild and re-save otherwise (empty = always build in memory)")
		degradeWait  = flag.Duration("degrade-wait", 500*time.Millisecond, "queue wait beyond which exact searches degrade to greedy (negative disables)")
		workers      = flag.Int("workers", 0, "max concurrent searches (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "max requests waiting for a worker (0 = 2x workers, negative = none)")
		cacheSize    = flag.Int("cache", 256, "result-cache capacity in entries (negative disables)")
		timeout      = flag.Duration("timeout", 30*time.Second, "default per-request search deadline")
		maxTimeout   = flag.Duration("max-timeout", 2*time.Minute, "ceiling on client-requested timeouts")
		drainGrace   = flag.Duration("drain-grace", time.Second, "how long to keep serving after the readiness flip so probes and queued clients observe it before the listener closes")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight searches")
		verbose      = flag.Bool("v", false, "debug-level structured logging")
		debugAddr    = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this extra address")
		slowQueryMS  = flag.Int("slow-query-ms", 250, "latency (ms) at or above which a request enters the slow-query log and is warned about (negative disables)")
		recorderSize = flag.Int("flight-recorder", 256, "completed requests retained by the /debug/requests flight recorder (negative disables the ring)")
		chaosSpec    = flag.String("chaos", "", "TESTING ONLY: deterministic fault-injection spec, e.g. 'seed=7,latency=0.1:1ms-20ms,e429=0.1:0,e500=0.1,reset=0.05,truncate=0.05' (see internal/chaos; empty = disabled)")
		traceStore   = flag.Int("trace-store", 256, "traces retained per tail-sampler tier on /debug/traces (negative disables trace retention)")
		traceSample  = flag.Float64("trace-sample", 1.0, "probability of storing an unflagged trace; slow/error/degraded traces are always kept (0 keeps flagged traces only)")
		traceExport  = flag.String("trace-export", "", "append stored trace fragments to this file as OTLP/JSON lines (empty = no export)")
	)
	flag.Parse()

	cliutil.MustChoice("ktgserver", "index", *indexKind, "bfs", "nl", "nlrnl")
	var presetNames []string
	for _, name := range strings.Split(*presets, ",") {
		if name = strings.TrimSpace(name); name != "" {
			cliutil.MustChoice("ktgserver", "presets", name, ktg.Presets()...)
			presetNames = append(presetNames, name)
		}
	}
	if len(presetNames) > 0 {
		cliutil.MustScale("ktgserver", *scale)
	}
	if len(presetNames) == 0 && *edges == "" {
		cliutil.BadUsage("ktgserver", "nothing to serve: give -presets and/or -edges")
	}
	if *walDir != "" && !*mutable {
		cliutil.BadUsage("ktgserver", "-wal-dir only makes sense with -mutable")
	}
	cliutil.MustChoice("ktgserver", "wal-sync", *walSync, "always", "interval", "off")

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := obs.NewTextLogger(os.Stderr, level)
	ktg.SetDefaultLogger(logger)

	// One flight recorder serves both the embedded /debug/requests*
	// routes and the -debug-addr surface (obs.DebugMux reads the
	// process default).
	recorder := obs.NewFlightRecorder(*recorderSize, 0,
		time.Duration(*slowQueryMS)*time.Millisecond, 0)
	obs.SetDefaultRecorder(recorder)

	// The trace store shares the recorder's slow threshold so the slow
	// log and the tail sampler agree on what "slow" means. Installed as
	// the process default so the embedded /debug/traces routes and the
	// -debug-addr surface serve the same traces.
	var traces *obs.TraceStore
	if *traceStore >= 0 {
		rate := *traceSample
		if rate == 0 {
			rate = -1 // store semantics: negative = flagged traces only
		}
		traces = obs.NewTraceStore(obs.TraceStoreConfig{
			KeptCapacity:    *traceStore,
			SampledCapacity: *traceStore,
			SampleRate:      rate,
			SlowThreshold:   recorder.SlowThreshold(),
		})
		if *traceExport != "" {
			exp, err := obs.NewTraceExporter(*traceExport, "ktgserver")
			if err != nil {
				fatal(logger, err)
			}
			defer exp.Close()
			traces.SetExporter(exp)
			logger.Info("trace export enabled", "path", *traceExport)
		}
		obs.SetDefaultTraceStore(traces)
	}

	if *debugAddr != "" {
		dbg, _, err := ktg.StartDebugServer(*debugAddr)
		if err != nil {
			fatal(logger, err)
		}
		logger.Info("debug server listening", "addr", dbg,
			"endpoints", "/metrics /debug/vars /debug/pprof/")
	}

	if *snapshots != "" {
		if err := os.MkdirAll(*snapshots, 0o755); err != nil {
			fatal(logger, err)
		}
	}

	// The root handler is swappable so a durable (-wal-dir) boot can open
	// the listener before WAL recovery: probes and early clients get the
	// RecoveryGate's honest 503 {"replaying": true, ...} instead of a
	// connection refusal, and the serving handler is swapped in once
	// every dataset has republished its pre-crash epoch.
	root := &swapHandler{}
	baseCtx, forceCancel := context.WithCancel(context.Background())
	defer forceCancel()
	httpSrv := &http.Server{
		Handler:           root,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}
	serveErr := make(chan error, 1)
	var ln net.Listener
	listen := func(fields ...any) {
		var err error
		if ln, err = net.Listen("tcp", *addr); err != nil {
			fatal(logger, err)
		}
		logger.Info("ktgserver listening",
			append([]any{"addr", ln.Addr().String()}, fields...)...)
		go func() { serveErr <- httpSrv.Serve(ln) }()
	}

	var dur *durability
	if *walDir != "" {
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			fatal(logger, err)
		}
		dur = &durability{
			baseDir:         *walDir,
			sync:            *walSync,
			checkpointEvery: *walCkptEvery,
			gate:            server.NewRecoveryGate(),
		}
		root.set(dur.gate.Handler())
		listen("recovering", true, "wal_dir", *walDir, "wal_sync", *walSync)
	}

	var datasets []*server.Dataset
	for _, name := range presetNames {
		nw, err := ktg.GeneratePreset(name, *scale)
		if err != nil {
			fatal(logger, err)
		}
		datasets = append(datasets, prepare(logger, name, nw, *indexKind, *snapshots, *mutable, dur))
	}
	if *edges != "" {
		nw, err := loadNetwork(*edges, *attrs)
		if err != nil {
			fatal(logger, err)
		}
		datasets = append(datasets, prepare(logger, *dsName, nw, *indexKind, *snapshots, *mutable, dur))
	}

	srv, err := server.New(server.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheSize:        *cacheSize,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		DegradeQueueWait: *degradeWait,
		Logger:           logger,
		Tracer:           obs.MetricsTracer{Reg: obs.Default()},
		Recorder:         recorder,
		TraceStore:       traces,
	}, datasets...)
	if err != nil {
		fatal(logger, err)
	}

	handler := srv.Handler()
	// Fault injection never enables silently: it requires an explicit
	// -chaos spec that actually injects something, and announces itself
	// at warning level before the listener opens.
	if *chaosSpec != "" {
		spec, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			fatal(logger, err)
		}
		if !spec.Active() {
			fatal(logger, errors.New("ktgserver: -chaos spec enables no faults; refusing to start chaos injection"))
		}
		handler = chaos.New(spec).Wrap(handler)
		logger.Warn("CHAOS INJECTION ENABLED: this server deliberately delays, fails, and corrupts responses",
			"spec", spec.String(), "seed", spec.Seed, "scoped_paths", strings.Join(spec.Paths(), ","))
	}

	root.set(handler)
	if dur == nil {
		listen("datasets", len(datasets), "workers", srv.Workers(), "queue", srv.QueueDepth())
	} else {
		logger.Info("ktgserver ready; wal recovery finished for all datasets",
			"datasets", len(datasets), "workers", srv.Workers(), "queue", srv.QueueDepth())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	select {
	case err := <-serveErr:
		fatal(logger, err)
	case <-ctx.Done():
	}

	logger.Info("shutdown signal received; draining", "grace", *drainGrace, "timeout", *drainTimeout)
	srv.Drain()
	// Keep the listener open for the grace window: http.Server.Shutdown
	// closes it (and idle connections) immediately, so without this pause
	// nothing outside would ever observe the /readyz flip or the 503s.
	time.Sleep(*drainGrace)
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		logger.Warn("drain budget exceeded; force-cancelling in-flight searches", "err", err)
		forceCancel()
		shCtx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		if err := httpSrv.Shutdown(shCtx2); err != nil {
			_ = httpSrv.Close()
		}
	}
	// Flush and release every dataset's WAL after traffic stops; a clean
	// shutdown leaves nothing for the next boot to replay-truncate.
	for _, ds := range datasets {
		if ds.Live != nil {
			if err := ds.Live.Close(); err != nil {
				logger.Warn("closing dataset wal", "dataset", ds.Name, "err", err)
			}
		}
	}
	logger.Info("ktgserver stopped")
}

// swapHandler atomically swaps the root handler: the RecoveryGate
// during WAL recovery, the real server afterwards.
type swapHandler struct{ h atomic.Pointer[http.Handler] }

func (s *swapHandler) set(h http.Handler) { s.h.Store(&h) }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := s.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	http.Error(w, "starting", http.StatusServiceUnavailable)
}

// durability carries the -wal-* flag surface into dataset preparation.
type durability struct {
	baseDir         string
	sync            string
	checkpointEvery uint64
	gate            *server.RecoveryGate
}

// prepare attaches the logger and builds the shared distance index for
// one dataset. "bfs" leaves the index nil: the per-instance BFS oracle
// is not safe to share, so each search gets a private one. With a
// snapshot directory the index is loaded from
// <dir>/<dataset>.<kind>.snap when that file is valid for this graph,
// and rebuilt + re-saved crash-atomically otherwise — a corrupt or
// stale snapshot costs a rebuild, never a failed startup. mutable wraps
// the network + index into a ktg.LiveNetwork so POST /v1/edges can
// publish new epochs; ownership of the index transfers to the live
// handle, searches resolve it through the current epoch's view.
func prepare(logger *slog.Logger, name string, nw *ktg.Network, indexKind, snapDir string, mutable bool, dur *durability) *server.Dataset {
	nw.SetLogger(logger)
	ds := &server.Dataset{Name: name, Network: nw}
	start := time.Now()
	var (
		err error
		out ktg.SnapshotOutcome
	)
	snapPath := ""
	if snapDir != "" && indexKind != "bfs" {
		snapPath = filepath.Join(snapDir, name+"."+indexKind+".snap")
	}
	switch {
	case indexKind == "bfs":
		liveWrap(logger, ds, mutable, dur)
		logger.Info("dataset ready", "dataset", name, "index", "BFS (per-search)",
			"mutable", mutable, "vertices", nw.NumVertices(), "edges", nw.NumEdges())
		return ds
	case indexKind == "nl" && snapPath != "":
		ds.Index, out, err = nw.LoadOrBuildNL(snapPath, 0)
	case indexKind == "nl":
		ds.Index, err = nw.BuildNL(0)
	case snapPath != "":
		ds.Index, out, err = nw.LoadOrBuildNLRNL(snapPath)
	default:
		ds.Index, err = nw.BuildNLRNL()
	}
	if err != nil {
		fatal(logger, err)
	}
	if snapPath != "" {
		logger.Info("index snapshot outcome", "dataset", name, "path", snapPath,
			"reason", out.Reason, "loaded", out.Loaded, "resaved", out.Saved)
	}
	liveWrap(logger, ds, mutable, dur)
	logger.Info("dataset ready", "dataset", name, "index", ds.Index.Name(),
		"build", time.Since(start).Round(time.Millisecond), "mutable", mutable,
		"vertices", nw.NumVertices(), "edges", nw.NumEdges())
	return ds
}

// liveWrap makes the dataset mutable when requested; an index without
// dynamic maintenance is a configuration error, caught at startup. With
// -wal-dir the live handle is durable: it recovers the dataset's WAL
// (replaying to the exact pre-crash epoch, reporting progress to the
// RecoveryGate) and write-ahead-logs every later batch.
func liveWrap(logger *slog.Logger, ds *server.Dataset, mutable bool, dur *durability) {
	if !mutable {
		return
	}
	if dur == nil {
		live, err := ktg.NewLiveNetwork(ds.Network, ds.Index)
		if err != nil {
			fatal(logger, err)
		}
		ds.Live = live
		return
	}
	live, _, err := ktg.NewLiveNetworkDurable(ds.Network, ds.Index, ktg.WALConfig{
		Dir:             filepath.Join(dur.baseDir, ds.Name),
		Sync:            dur.sync,
		CheckpointEvery: dur.checkpointEvery,
		Progress:        dur.gate.SetProgress,
		Logger:          logger,
	})
	if err != nil {
		fatal(logger, err)
	}
	ds.Live = live
}

func loadNetwork(edges, attrs string) (*ktg.Network, error) {
	if edges == "" {
		return nil, errors.New("need -edges")
	}
	ef, err := os.Open(edges)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	if attrs == "" {
		return ktg.LoadNetwork(ef, nil)
	}
	af, err := os.Open(attrs)
	if err != nil {
		return nil, err
	}
	defer af.Close()
	return ktg.LoadNetwork(ef, af)
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("ktgserver failed", "err", err)
	os.Exit(1)
}
