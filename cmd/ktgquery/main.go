// Command ktgquery answers a single KTG or DKTG query on a dataset, from
// files (ktggen output) or a generated preset.
//
// Examples:
//
//	ktgquery -preset brightkite -scale 0.05 -keywords auto -p 3 -k 2 -n 3
//	ktgquery -edges g.edges -attrs g.attrs -keywords kw01,kw07 -p 4 -k 1 -n 5 -alg vkc -index nl
//	ktgquery -preset dblp -scale 0.02 -keywords auto -diverse
//	ktgquery -preset gowalla -v -stats-json -debug-addr :6060
//
// Result groups print on stdout; progress and statistics go to a
// structured slog logger on stderr (info level by default, debug with
// -v). -stats-json dumps the full SearchStats as one JSON object on
// stdout. -debug-addr serves /metrics, /debug/vars, and /debug/pprof/
// for the lifetime of the process (the process stays up after answering
// so the endpoints can be scraped; interrupt to exit). -trace prints
// the run's span waterfall (compile/candidates/explore timings) on
// stderr; -trace-export appends the trace to a file as OTLP/JSON.
// -explain prints the search's explain plan — the per-depth
// expand/prune/filter breakdown and the bound trajectory — on stdout
// after the result groups.
//
// Ctrl-C during a long search cancels it cleanly: the best groups found
// so far are printed with a warning instead of discarding the work.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ktg"
	"ktg/internal/cliutil"
	"ktg/internal/obs"
)

func main() {
	var (
		preset    = flag.String("preset", "", "generate this preset instead of loading files")
		scale     = flag.Float64("scale", 0.05, "preset scale factor")
		edges     = flag.String("edges", "", "edge-list file (with -attrs)")
		attrs     = flag.String("attrs", "", "keyword attribute file")
		kwList    = flag.String("keywords", "auto", "comma-separated query keywords, or \"auto\" for the 6 most popular")
		p         = flag.Int("p", 3, "group size")
		k         = flag.Int("k", 2, "tenuity constraint (pairwise distance must exceed k)")
		n         = flag.Int("n", 3, "number of groups")
		alg       = flag.String("alg", "vkc-deg", "algorithm: vkc-deg, vkc, qkc, brute")
		indexKind = flag.String("index", "nlrnl", "distance index: bfs, nl, nlrnl")
		diverse   = flag.Bool("diverse", false, "run the diversified DKTG-Greedy query")
		greedy    = flag.Bool("greedy", false, "run the approximate greedy search instead of an exact algorithm")
		gamma     = flag.Float64("gamma", 0.5, "DKTG coverage/diversity weight")
		maxNodes  = flag.Int64("maxnodes", 50_000_000, "search node budget (0 = unlimited)")
		verbose   = flag.Bool("v", false, "debug-level structured logging (per-phase spans, index builds)")
		statsJSON = flag.Bool("stats-json", false, "dump the full SearchStats as one JSON object on stdout")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address and stay up after answering")
		trace     = flag.Bool("trace", false, "print the run's trace as an ASCII waterfall on stderr after answering")
		traceOut  = flag.String("trace-export", "", "append the run's trace to this file as OTLP/JSON lines")
		explain   = flag.Bool("explain", false, "print the search explain plan (per-depth prune/filter breakdown, bound trajectory) on stdout after the groups")
	)
	flag.Parse()

	cliutil.MustChoice("ktgquery", "alg", *alg, "vkc-deg", "vkc", "qkc", "brute")
	cliutil.MustChoice("ktgquery", "index", *indexKind, "bfs", "nl", "nlrnl")
	if *preset != "" {
		cliutil.MustChoice("ktgquery", "preset", *preset, ktg.Presets()...)
		cliutil.MustScale("ktgquery", *scale)
	}

	// Ctrl-C (or SIGTERM) cancels the running search via the context:
	// the core notices at its next throttled check and hands back the
	// best groups found so far, which are printed with a warning.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Each run gets a request ID, carried on the context and stamped on
	// every log line (errors included), so a run's output correlates
	// with flight-recorder records and metrics scraped via -debug-addr.
	requestID := ktg.NewRequestID()
	ctx = ktg.WithRequestID(ctx, requestID)

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := obs.NewTextLogger(os.Stderr, level).With("request_id", requestID)
	ktg.SetDefaultLogger(logger)

	// With -trace or -trace-export the run executes under a root span in
	// a private trace store (rate 1, nothing is sampled away); the core's
	// compile/candidates/explore phases land as child spans.
	var (
		traces   *obs.TraceStore
		runSpan  *obs.Span
		finished = func() {}
	)
	if *trace || *traceOut != "" {
		traces = obs.NewTraceStore(obs.TraceStoreConfig{})
		if *traceOut != "" {
			exp, err := obs.NewTraceExporter(*traceOut, "ktgquery")
			if err != nil {
				fatal(logger, err)
			}
			defer exp.Close()
			traces.SetExporter(exp)
		}
		ctx = obs.ContextWithTraceStore(ctx, traces)
		ctx, runSpan = obs.StartSpan(ctx, "ktgquery run")
		runSpan.SetAttr("request_id", requestID)
		finished = func() {
			runSpan.End()
			if *trace {
				if t := traces.Get(runSpan.TraceID()); t != nil {
					fmt.Fprint(os.Stderr, obs.Waterfall(t))
				}
			}
			logger.Info("trace recorded", "trace_id", runSpan.TraceID())
		}
	}

	if *debugAddr != "" {
		addr, _, err := ktg.StartDebugServer(*debugAddr)
		if err != nil {
			fatal(logger, err)
		}
		logger.Info("debug server listening", "addr", addr,
			"endpoints", "/metrics /debug/vars /debug/pprof/")
	}

	net, err := loadNetwork(*preset, *scale, *edges, *attrs)
	if err != nil {
		fatal(logger, err)
	}
	net.SetLogger(logger)
	if *verbose {
		net.SetTracer(obs.SlogTracer{L: logger})
	}
	logger.Info("network loaded", "name", net.Name(),
		"vertices", net.NumVertices(), "edges", net.NumEdges(), "keywords", net.VocabularySize())

	var kws []string
	if *kwList == "auto" {
		kws = net.PopularKeywords(6)
	} else {
		for _, kw := range strings.Split(*kwList, ",") {
			if kw = strings.TrimSpace(kw); kw != "" {
				kws = append(kws, kw)
			}
		}
	}
	q := ktg.Query{Keywords: kws, GroupSize: *p, Tenuity: *k, TopN: *n}
	logger.Info("query", "keywords", kws, "p", *p, "k", *k, "n", *n)

	opts := ktg.SearchOptions{MaxNodes: *maxNodes, Context: ctx, Logger: logger}
	var probe *ktg.Probe
	if *explain {
		probe = &ktg.Probe{}
		opts.Probe = probe
	}
	switch *alg {
	case "vkc-deg":
		opts.Algorithm = ktg.AlgVKCDeg
	case "vkc":
		opts.Algorithm = ktg.AlgVKC
	case "qkc":
		opts.Algorithm = ktg.AlgQKC
	case "brute":
		opts.Algorithm = ktg.AlgBruteForce
	}
	start := time.Now()
	switch *indexKind {
	case "bfs":
		opts.Index = net.NewBFSIndex()
	case "nl":
		idx, err := net.BuildNL(0)
		if err != nil {
			fatal(logger, err)
		}
		opts.Index = idx
	case "nlrnl":
		idx, err := net.BuildNLRNL()
		if err != nil {
			fatal(logger, err)
		}
		opts.Index = idx
	}
	logger.Info("index ready", "index", opts.Index.Name(), "dur", time.Since(start).Round(time.Millisecond))

	switch {
	case *greedy:
		start = time.Now()
		res, err := net.SearchGreedyWith(q, opts, 0)
		reportErr(logger, err)
		logger.Info("greedy answered", "dur", time.Since(start).Round(time.Microsecond),
			"seeds", res.Stats.Nodes, "note", "approximate")
		emitStats(logger, *statsJSON, res.Stats)
		printGroups(net, res.Groups)
	case *diverse:
		start = time.Now()
		dr, err := net.SearchDiverse(q, ktg.DiverseOptions{SearchOptions: opts, Gamma: *gamma})
		reportErr(logger, err)
		logger.Info("DKTG-Greedy answered", "dur", time.Since(start).Round(time.Microsecond),
			"score", dr.Score, "diversity", dr.Diversity, "min_coverage", dr.MinQKC)
		emitStats(logger, *statsJSON, dr.Stats)
		printGroups(net, dr.Groups)
	default:
		start = time.Now()
		res, err := net.Search(q, opts)
		reportErr(logger, err)
		logger.Info("search answered", "alg", opts.Algorithm.String(),
			"dur", time.Since(start).Round(time.Microsecond),
			"nodes", res.Stats.Nodes, "pruned", res.Stats.Pruned,
			"distance_checks", res.Stats.DistanceChecks, "feasible", res.Stats.Feasible,
			"compile", res.Stats.CompileTime, "candidates", res.Stats.CandidateTime,
			"explore", res.Stats.ExploreTime)
		emitStats(logger, *statsJSON, res.Stats)
		printGroups(net, res.Groups)
	}
	if probe != nil {
		if *alg == "brute" {
			logger.Warn("brute-force search does not support -explain; no plan recorded")
		} else {
			fmt.Print(probe.Explain().Render())
		}
	}
	finished()

	if *debugAddr != "" {
		logger.Info("answering done; debug server still serving (interrupt to exit)")
		<-ctx.Done()
		stop()
	}
}

// emitStats dumps the full stats struct (including the timing breakdown
// and per-depth histograms) as one JSON object on stdout.
func emitStats(logger *slog.Logger, enabled bool, s ktg.SearchStats) {
	if !enabled {
		return
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(s); err != nil {
		logger.Error("encoding stats", "err", err)
	}
}

func loadNetwork(preset string, scale float64, edges, attrs string) (*ktg.Network, error) {
	if preset != "" {
		return ktg.GeneratePreset(preset, scale)
	}
	if edges == "" {
		return nil, errors.New("need -preset or -edges/-attrs")
	}
	ef, err := os.Open(edges)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	var af *os.File
	if attrs != "" {
		af, err = os.Open(attrs)
		if err != nil {
			return nil, err
		}
		defer af.Close()
		return ktg.LoadNetwork(ef, af)
	}
	return ktg.LoadNetwork(ef, nil)
}

func printGroups(net *ktg.Network, groups []ktg.Group) {
	if len(groups) == 0 {
		fmt.Println("no feasible group satisfies the constraints")
		return
	}
	for i, g := range groups {
		fmt.Printf("group %d: coverage %.2f, covered %v\n", i+1, g.QKC, g.Covered)
		for _, v := range g.Members {
			fmt.Printf("  u%-8d keywords %v\n", v, net.Keywords(v))
		}
	}
}

func reportErr(logger *slog.Logger, err error) {
	if err == nil {
		return
	}
	if errors.Is(err, ktg.ErrBudgetExhausted) {
		logger.Warn("node budget exhausted; result may be partial")
		return
	}
	if errors.Is(err, context.Canceled) {
		logger.Warn("search interrupted; printing the best groups found so far")
		return
	}
	fatal(logger, err)
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("ktgquery failed", "err", err)
	os.Exit(1)
}
