// Command ktgquery answers a single KTG or DKTG query on a dataset, from
// files (ktggen output) or a generated preset.
//
// Examples:
//
//	ktgquery -preset brightkite -scale 0.05 -keywords auto -p 3 -k 2 -n 3
//	ktgquery -edges g.edges -attrs g.attrs -keywords kw01,kw07 -p 4 -k 1 -n 5 -alg vkc -index nl
//	ktgquery -preset dblp -scale 0.02 -keywords auto -diverse
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ktg"
)

func main() {
	var (
		preset    = flag.String("preset", "", "generate this preset instead of loading files")
		scale     = flag.Float64("scale", 0.05, "preset scale factor")
		edges     = flag.String("edges", "", "edge-list file (with -attrs)")
		attrs     = flag.String("attrs", "", "keyword attribute file")
		kwList    = flag.String("keywords", "auto", "comma-separated query keywords, or \"auto\" for the 6 most popular")
		p         = flag.Int("p", 3, "group size")
		k         = flag.Int("k", 2, "tenuity constraint (pairwise distance must exceed k)")
		n         = flag.Int("n", 3, "number of groups")
		alg       = flag.String("alg", "vkc-deg", "algorithm: vkc-deg, vkc, qkc, brute")
		indexKind = flag.String("index", "nlrnl", "distance index: bfs, nl, nlrnl")
		diverse   = flag.Bool("diverse", false, "run the diversified DKTG-Greedy query")
		greedy    = flag.Bool("greedy", false, "run the approximate greedy search instead of an exact algorithm")
		gamma     = flag.Float64("gamma", 0.5, "DKTG coverage/diversity weight")
		maxNodes  = flag.Int64("maxnodes", 50_000_000, "search node budget (0 = unlimited)")
	)
	flag.Parse()

	net, err := loadNetwork(*preset, *scale, *edges, *attrs)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s\n", net)

	var kws []string
	if *kwList == "auto" {
		kws = net.PopularKeywords(6)
	} else {
		for _, kw := range strings.Split(*kwList, ",") {
			if kw = strings.TrimSpace(kw); kw != "" {
				kws = append(kws, kw)
			}
		}
	}
	q := ktg.Query{Keywords: kws, GroupSize: *p, Tenuity: *k, TopN: *n}
	fmt.Printf("query: W_Q=%v p=%d k=%d N=%d\n", kws, *p, *k, *n)

	opts := ktg.SearchOptions{MaxNodes: *maxNodes}
	switch *alg {
	case "vkc-deg":
		opts.Algorithm = ktg.AlgVKCDeg
	case "vkc":
		opts.Algorithm = ktg.AlgVKC
	case "qkc":
		opts.Algorithm = ktg.AlgQKC
	case "brute":
		opts.Algorithm = ktg.AlgBruteForce
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *alg))
	}
	start := time.Now()
	switch *indexKind {
	case "bfs":
		opts.Index = net.NewBFSIndex()
	case "nl":
		idx, err := net.BuildNL(0)
		if err != nil {
			fatal(err)
		}
		opts.Index = idx
	case "nlrnl":
		idx, err := net.BuildNLRNL()
		if err != nil {
			fatal(err)
		}
		opts.Index = idx
	default:
		fatal(fmt.Errorf("unknown index %q", *indexKind))
	}
	fmt.Printf("index %s ready in %v\n", opts.Index.Name(), time.Since(start).Round(time.Millisecond))

	if *greedy {
		start = time.Now()
		res, err := net.SearchGreedy(q, opts.Index, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Greedy answered in %v (approximate; %d seeds tried)\n",
			time.Since(start).Round(time.Microsecond), res.Stats.Nodes)
		printGroups(net, res.Groups)
		return
	}

	if *diverse {
		start = time.Now()
		dr, err := net.SearchDiverse(q, ktg.DiverseOptions{SearchOptions: opts, Gamma: *gamma})
		reportErr(err)
		fmt.Printf("DKTG-Greedy answered in %v (score %.3f, diversity %.3f, min coverage %.3f)\n",
			time.Since(start).Round(time.Microsecond), dr.Score, dr.Diversity, dr.MinQKC)
		printGroups(net, dr.Groups)
		return
	}

	start = time.Now()
	res, err := net.Search(q, opts)
	reportErr(err)
	fmt.Printf("%s answered in %v (%d nodes explored, %d pruned, %d distance checks)\n",
		opts.Algorithm, time.Since(start).Round(time.Microsecond),
		res.Stats.Nodes, res.Stats.Pruned, res.Stats.DistanceChecks)
	printGroups(net, res.Groups)
}

func loadNetwork(preset string, scale float64, edges, attrs string) (*ktg.Network, error) {
	if preset != "" {
		return ktg.GeneratePreset(preset, scale)
	}
	if edges == "" {
		return nil, errors.New("need -preset or -edges/-attrs")
	}
	ef, err := os.Open(edges)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	var af *os.File
	if attrs != "" {
		af, err = os.Open(attrs)
		if err != nil {
			return nil, err
		}
		defer af.Close()
		return ktg.LoadNetwork(ef, af)
	}
	return ktg.LoadNetwork(ef, nil)
}

func printGroups(net *ktg.Network, groups []ktg.Group) {
	if len(groups) == 0 {
		fmt.Println("no feasible group satisfies the constraints")
		return
	}
	for i, g := range groups {
		fmt.Printf("group %d: coverage %.2f, covered %v\n", i+1, g.QKC, g.Covered)
		for _, v := range g.Members {
			fmt.Printf("  u%-8d keywords %v\n", v, net.Keywords(v))
		}
	}
}

func reportErr(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, ktg.ErrBudgetExhausted) {
		fmt.Println("note: node budget exhausted; result may be partial")
		return
	}
	fatal(err)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ktgquery:", err)
	os.Exit(1)
}
