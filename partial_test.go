package ktg

import (
	"reflect"
	"testing"
)

// TestPublicPartialRoundTrip checks the public wrappers end to end:
// SearchPartial per slice, MergePartials, byte-identical to Search —
// including the Covered keyword names the coordinator re-attaches from
// the offer stream instead of a local vocabulary.
func TestPublicPartialRoundTrip(t *testing.T) {
	net, err := GeneratePreset("brightkite", 0.004)
	if err != nil {
		t.Fatal(err)
	}
	kws := net.PopularKeywords(4)
	q := Query{Keywords: kws, GroupSize: 3, Tenuity: 2, TopN: 3}
	want, err := net.Search(q, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []int{2, 3} {
		parts := make([]*PartialResult, count)
		for i := range parts {
			parts[i], err = net.SearchPartial(q, SearchOptions{}, CandidateSlice{Index: i, Count: count})
			if err != nil {
				t.Fatal(err)
			}
			if parts[i].Slice != (CandidateSlice{Index: i, Count: count}) {
				t.Fatalf("part echoes slice %+v", parts[i].Slice)
			}
		}
		got, exact, err := MergePartials(q.TopN, parts)
		if err != nil {
			t.Fatal(err)
		}
		if !exact {
			t.Fatalf("count=%d: full partition merged inexact", count)
		}
		if !reflect.DeepEqual(want.Groups, got.Groups) {
			t.Fatalf("count=%d: merged groups differ\nwant %+v\ngot  %+v", count, want.Groups, got.Groups)
		}
	}
}

// TestPublicPartialRejectsBruteForce: only branch-and-bound algorithms
// can run partially.
func TestPublicPartialRejectsBruteForce(t *testing.T) {
	net, err := GeneratePreset("brightkite", 0.002)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Keywords: net.PopularKeywords(2), GroupSize: 2, Tenuity: 1, TopN: 1}
	if _, err := net.SearchPartial(q, SearchOptions{Algorithm: AlgBruteForce}, CandidateSlice{Index: 0, Count: 2}); err == nil {
		t.Fatal("brute force accepted as partial search")
	}
}
