package ktg

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"

	"ktg/internal/graph"
	"ktg/internal/index"
	"ktg/internal/live"
	"ktg/internal/obs"
	"ktg/internal/persist"
	"ktg/internal/wal"
)

// WALConfig configures durable live mutation: a per-dataset write-ahead
// log (see internal/wal) that makes acked edge batches survive crashes
// and restarts.
type WALConfig struct {
	// Dir is this dataset's WAL directory, created if absent. A log
	// recorded against a different base graph is refused.
	Dir string
	// Sync is the fsync policy: "always" (default; an ack means the
	// batch survives power loss), "interval" (background fsync every
	// SyncInterval), or "off" (durability left to the OS).
	Sync string
	// SyncInterval is the background fsync period for Sync "interval"
	// (default 100ms).
	SyncInterval time.Duration
	// CheckpointEvery snapshots the live graph and retires superseded
	// WAL segments every N epochs; 0 disables checkpointing and the log
	// grows without bound.
	CheckpointEvery uint64
	// SegmentMaxBytes rotates WAL segments at this size (default 4 MiB).
	SegmentMaxBytes int64
	// Progress, when set, observes recovery replay as (applied, total)
	// record counts — the feed for /readyz's records_remaining while
	// replay is in progress.
	Progress func(applied, total int)
	// Logger receives recovery and checkpoint records (nil = process
	// default).
	Logger *slog.Logger
}

// RecoveryStats reports what opening a durable LiveNetwork recovered.
// The zero Recovered/RecordsReplayed case is a fresh log. The struct is
// JSON-tagged because /readyz and /v1/datasets surface it verbatim.
type RecoveryStats struct {
	// Epoch is the epoch republished after recovery — exactly the last
	// acked pre-crash epoch.
	Epoch uint64 `json:"epoch"`
	// CheckpointEpoch is the epoch of the checkpoint recovery started
	// from (0 = replayed from the base snapshot).
	CheckpointEpoch uint64 `json:"checkpoint_epoch,omitempty"`
	// RecordsReplayed / OpsReplayed count the WAL batches and edge ops
	// re-applied on top of the starting snapshot.
	RecordsReplayed int `json:"records_replayed"`
	OpsReplayed     int `json:"ops_replayed"`
	// TornTail reports that the final segment ended in an interrupted
	// append, truncated away; TornBytes is how much was dropped. Only
	// unacked bytes can be torn under the "always" sync policy.
	TornTail  bool  `json:"torn_tail,omitempty"`
	TornBytes int64 `json:"torn_bytes,omitempty"`
	// DurationMS is wall-clock recovery time in milliseconds.
	DurationMS int64 `json:"duration_ms"`
}

// NewLiveNetworkDurable is NewLiveNetwork plus a write-ahead log: it
// opens (or initializes) the WAL in cfg.Dir, rebuilds the last durable
// state — checkpoint snapshot if one exists, base network otherwise,
// plus a replay of every complete log record — republishes the exact
// pre-crash epoch, and only then starts accepting mutations, each acked
// strictly after its record is durable. The supplied index must match
// the kind the log's checkpoints were rebuilt for (it is used directly
// when recovery starts from the base graph, and its kind/parameters are
// reused to rebuild over a checkpoint graph).
func NewLiveNetworkDurable(n *Network, idx DistanceIndex, cfg WALConfig) (*LiveNetwork, *RecoveryStats, error) {
	start := time.Now()
	logger := cfg.Logger
	if logger == nil {
		logger = obs.Logger()
	}
	pol, err := wal.ParseSyncPolicy(cfg.Sync)
	if err != nil {
		return nil, nil, err
	}
	l, err := wal.Open(wal.Config{
		Dir:             cfg.Dir,
		Base:            persist.FingerprintOf(n.g),
		Sync:            pol,
		SyncInterval:    cfg.SyncInterval,
		SegmentMaxBytes: cfg.SegmentMaxBytes,
	})
	if err != nil {
		return nil, nil, err
	}

	stats := &RecoveryStats{}
	var r live.Replica
	startEpoch := uint64(1)
	if cp, ok := l.LastCheckpoint(); ok {
		g, err := readCheckpointGraph(cp.Path, cp.Graph)
		if err != nil {
			l.Close()
			return nil, nil, err
		}
		if r, err = rebuildReplica(n, g, idx); err != nil {
			l.Close()
			return nil, nil, err
		}
		startEpoch = cp.Epoch
		stats.CheckpointEpoch = cp.Epoch
	} else {
		if r, err = newReplica(n, idx); err != nil {
			l.Close()
			return nil, nil, err
		}
	}

	mgr := live.NewManagerAt(r, startEpoch)
	rs, err := l.Replay(func(rec wal.Record) error {
		ops := make([]live.EdgeOp, len(rec.Ops))
		for i, op := range rec.Ops {
			ops[i] = live.EdgeOp{Insert: op.Insert, U: Vertex(op.U), V: Vertex(op.V)}
		}
		res, err := mgr.Apply(ops)
		if err != nil {
			return err
		}
		// The log stores only effective ops, so a faithful replay applies
		// every one of them and publishes exactly the recorded epoch.
		if !res.Swapped || res.Epoch != rec.Epoch || res.Applied != len(ops) {
			return fmt.Errorf("record published epoch %d with %d/%d ops applied, log says epoch %d: %w",
				res.Epoch, res.Applied, len(ops), rec.Epoch, wal.ErrReplayDiverged)
		}
		return nil
	}, cfg.Progress)
	if err != nil {
		l.Close()
		return nil, nil, err
	}

	// Every mutation from here on is acked only after its record is
	// durable under the configured sync policy.
	mgr.SetDurability(func(epoch uint64, applied []live.EdgeOp) error {
		ops := make([]wal.EdgeOp, len(applied))
		for i, op := range applied {
			ops[i] = wal.EdgeOp{Insert: op.Insert, U: uint32(op.U), V: uint32(op.V)}
		}
		return l.Append(wal.Record{Epoch: epoch, Ops: ops})
	})

	ln := &LiveNetwork{base: n, mgr: mgr, wal: l, checkpointEvery: cfg.CheckpointEvery, logger: logger}
	ln.view.Store(ln.derive(mgr.Current()))
	stats.Epoch = mgr.Epoch()
	stats.RecordsReplayed = rs.Records
	stats.OpsReplayed = rs.Ops
	stats.TornTail = rs.TornTail
	stats.TornBytes = rs.TornBytes
	stats.DurationMS = time.Since(start).Milliseconds()
	ln.recovery = stats
	logger.Info("wal recovery complete",
		"dir", cfg.Dir, "epoch", stats.Epoch, "checkpoint_epoch", stats.CheckpointEpoch,
		"records_replayed", stats.RecordsReplayed, "ops_replayed", stats.OpsReplayed,
		"torn_tail", stats.TornTail, "torn_bytes", stats.TornBytes,
		"duration", time.Since(start).Round(time.Millisecond))
	return ln, stats, nil
}

// newReplica builds the writer replica for the base network, reusing
// the already-built index (NewLiveNetwork's construction rules).
func newReplica(n *Network, idx DistanceIndex) (live.Replica, error) {
	switch x := idx.(type) {
	case nil:
		return live.NewGraphReplica(graph.MutableFrom(n.g)), nil
	case *NLIndex:
		return live.NewNLReplica(graph.MutableFrom(n.g), x.nl), nil
	case *NLRNLIndex:
		return live.NewNLRNLReplica(x.x), nil
	default:
		return nil, fmt.Errorf("ktg: index %q does not support live mutation", idx.Name())
	}
}

// rebuildReplica builds the writer replica for a checkpoint graph g,
// reconstructing the same index kind (and parameters) idx carries. The
// base index itself is unusable here: it describes epoch 1's topology,
// not the checkpoint's.
func rebuildReplica(n *Network, g *graph.Graph, idx DistanceIndex) (live.Replica, error) {
	switch x := idx.(type) {
	case nil:
		return live.NewGraphReplica(graph.MutableFrom(g)), nil
	case *NLIndex:
		nl, err := index.BuildNL(g, index.NLOptions{H: x.nl.H(), Tracer: n.tracer, Logger: n.logger})
		if err != nil {
			return nil, fmt.Errorf("ktg: rebuilding NL over checkpoint graph: %w", err)
		}
		return live.NewNLReplica(graph.MutableFrom(g), nl), nil
	case *NLRNLIndex:
		x2, err := index.BuildNLRNLWith(g, index.NLRNLOptions{Tracer: n.tracer, Logger: n.logger})
		if err != nil {
			return nil, fmt.Errorf("ktg: rebuilding NLRNL over checkpoint graph: %w", err)
		}
		return live.NewNLRNLReplica(x2), nil
	default:
		return nil, fmt.Errorf("ktg: index %q does not support live mutation", idx.Name())
	}
}

// readCheckpointGraph decodes a checkpoint snapshot and verifies it is
// exactly the graph the WAL manifest committed to.
func readCheckpointGraph(path string, want persist.Fingerprint) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ktg: opening wal checkpoint: %w", err)
	}
	defer f.Close()
	g, err := graph.ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("ktg: reading wal checkpoint %s: %w", path, err)
	}
	if got := persist.FingerprintOf(g); got != want {
		return nil, fmt.Errorf("ktg: wal checkpoint %s decodes to graph %v, manifest committed %v: %w",
			path, got, want, persist.ErrFingerprintMismatch)
	}
	return g, nil
}

// maybeCheckpoint runs under ln.mu after a swap: every CheckpointEvery
// epochs it snapshots the just-published graph and retires superseded
// segments. Failure is logged, not fatal — durability is already
// guaranteed by the log; a missed checkpoint only costs log growth.
func (ln *LiveNetwork) maybeCheckpoint(v *live.View) {
	if ln.wal == nil || ln.checkpointEvery == 0 || v.Epoch%ln.checkpointEvery != 0 {
		return
	}
	start := time.Now()
	err := ln.wal.Checkpoint(v.Epoch, persist.FingerprintOf(v.Graph), func(w io.Writer) error {
		return graph.WriteBinary(w, v.Graph)
	})
	if err != nil {
		ln.logf().Warn("wal checkpoint failed; log will keep growing until one succeeds",
			"epoch", v.Epoch, "err", err)
		return
	}
	ln.logf().Info("wal checkpoint committed", "epoch", v.Epoch,
		"duration", time.Since(start).Round(time.Millisecond))
}

func (ln *LiveNetwork) logf() *slog.Logger {
	if ln.logger != nil {
		return ln.logger
	}
	return obs.Logger()
}

// Recovery returns the stats recorded when this LiveNetwork was opened
// with NewLiveNetworkDurable, or nil for a purely in-memory handle.
func (ln *LiveNetwork) Recovery() *RecoveryStats { return ln.recovery }

// Durable reports whether mutations are written ahead to a WAL.
func (ln *LiveNetwork) Durable() bool { return ln.wal != nil }

// Close flushes and releases the WAL (a no-op for in-memory handles).
// The LiveNetwork must not be mutated afterwards; reads stay valid.
func (ln *LiveNetwork) Close() error {
	if ln.wal == nil {
		return nil
	}
	return ln.wal.Close()
}
