package ktg_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ktg"
)

func TestNetworkString(t *testing.T) {
	n := reviewerNetwork(t)
	s := n.String()
	if !strings.Contains(s, "12 vertices") || !strings.Contains(s, "17 edges") {
		t.Errorf("String = %q", s)
	}
}

func TestNeighborsAndAverageDegree(t *testing.T) {
	n := reviewerNetwork(t)
	ns := n.Neighbors(10)
	if len(ns) != 2 || ns[0] != 9 || ns[1] != 11 {
		t.Errorf("Neighbors(10) = %v", ns)
	}
	want := float64(2*17) / 12
	if got := n.AverageDegree(); got != want {
		t.Errorf("AverageDegree = %v, want %v", got, want)
	}
	if n.VocabularySize() != 6 {
		t.Errorf("VocabularySize = %d, want 6", n.VocabularySize())
	}
}

func TestPopularKeywords(t *testing.T) {
	n := reviewerNetwork(t)
	got := n.PopularKeywords(3)
	// SN appears 5 times, DQ 4, GD 4 (GD interned before DQ? order by
	// count desc then intern id asc: SN(5), GD(4, id 1), DQ(4, id 2)).
	if len(got) != 3 || got[0] != "SN" {
		t.Fatalf("PopularKeywords = %v", got)
	}
	if all := n.PopularKeywords(100); len(all) != 6 {
		t.Errorf("PopularKeywords(100) returned %d names, want 6", len(all))
	}
}

func TestPLLIndexEndToEnd(t *testing.T) {
	n := reviewerNetwork(t)
	pll, err := n.BuildPLL()
	if err != nil {
		t.Fatal(err)
	}
	if pll.Name() != "PLL" {
		t.Errorf("Name = %q", pll.Name())
	}
	if d := pll.Distance(3, 5); d != 3 {
		t.Errorf("Distance(3,5) = %d, want 3", d)
	}
	if pll.Entries() <= 0 || pll.SpaceBytes() <= 0 || pll.AverageLabelSize() <= 0 {
		t.Error("PLL accounting empty")
	}
	res, err := n.Search(reviewerQuery, ktg.SearchOptions{Index: pll})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups[0].QKC != 1.0 {
		t.Errorf("PLL-backed search best QKC = %v", res.Groups[0].QKC)
	}
}

func TestLoadNetworkErrors(t *testing.T) {
	if _, err := ktg.LoadNetwork(strings.NewReader("not numbers\n"), nil); err == nil {
		t.Error("bad edge list accepted")
	}
	edges := strings.NewReader("0 1\n")
	attrs := strings.NewReader("not-a-vertex\tx\n")
	if _, err := ktg.LoadNetwork(edges, attrs); err == nil {
		t.Error("bad attributes accepted")
	}
}

func TestLoadNetworkWithoutAttributes(t *testing.T) {
	n, err := ktg.LoadNetwork(strings.NewReader("0 1\n1 2\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumVertices() != 3 || len(n.Keywords(0)) != 0 {
		t.Fatalf("keyword-free network wrong: %v", n)
	}
	// A query over it finds nothing (nobody covers a keyword) but does
	// not error.
	res, err := n.Search(ktg.Query{Keywords: []string{"x"}, GroupSize: 1, Tenuity: 1, TopN: 1},
		ktg.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Error("groups found without any keyword carrier")
	}
}

func TestBuilderIsolatedKeywordVertex(t *testing.T) {
	b := ktg.NewBuilder(0)
	b.AddEdge(0, 1)
	b.SetKeywords(5, "solo") // vertex 5 has keywords but no edges
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if n.NumVertices() != 6 {
		t.Fatalf("NumVertices = %d, want 6", n.NumVertices())
	}
	if got := n.Keywords(5); len(got) != 1 || got[0] != "solo" {
		t.Fatalf("Keywords(5) = %v", got)
	}
	// The isolated vertex is infinitely far from everyone: it can join
	// any group.
	res, err := n.Search(ktg.Query{Keywords: []string{"solo"}, GroupSize: 1, Tenuity: 4, TopN: 1},
		ktg.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 || res.Groups[0].Members[0] != 5 {
		t.Fatalf("expected the isolated vertex, got %+v", res.Groups)
	}
}

func TestSearchInvalidQuery(t *testing.T) {
	n := reviewerNetwork(t)
	bad := []ktg.Query{
		{GroupSize: 3, Tenuity: 1, TopN: 1},                            // no keywords
		{Keywords: []string{"SN"}, GroupSize: 0, Tenuity: 1, TopN: 1},  // p = 0
		{Keywords: []string{"SN"}, GroupSize: 3, Tenuity: -1, TopN: 1}, // k < 0
		{Keywords: []string{"SN"}, GroupSize: 3, Tenuity: 1, TopN: 0},  // N = 0
	}
	for i, q := range bad {
		if _, err := n.Search(q, ktg.SearchOptions{}); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
		if _, err := n.SearchDiverse(q, ktg.DiverseOptions{Gamma: 0.5}); err == nil {
			t.Errorf("bad diverse query %d accepted", i)
		}
		if _, err := n.SearchGreedy(q, nil, 0); err == nil {
			t.Errorf("bad greedy query %d accepted", i)
		}
		if _, err := n.TAGQBaseline(q, 0.3, nil); err == nil {
			t.Errorf("bad TAGQ query %d accepted", i)
		}
	}
}

func TestIndexLoadErrors(t *testing.T) {
	n := reviewerNetwork(t)
	if _, err := n.LoadNL(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("LoadNL accepted garbage")
	}
	if _, err := n.LoadNLRNL(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("LoadNLRNL accepted garbage")
	}
}

// TestQuickPublicAPIExactness drives the whole stack through the public
// API: on random networks, the default search must match brute force.
func TestQuickPublicAPIExactness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nv := 4 + r.Intn(12)
		b := ktg.NewBuilder(nv)
		for i := 0; i < nv; i++ {
			for j := i + 1; j < nv; j++ {
				if r.Float64() < 0.3 {
					b.AddEdge(ktg.Vertex(i), ktg.Vertex(j))
				}
			}
		}
		vocab := []string{"a", "b", "c", "d", "e"}
		for i := 0; i < nv; i++ {
			var kws []string
			for _, kw := range vocab {
				if r.Float64() < 0.4 {
					kws = append(kws, kw)
				}
			}
			b.SetKeywords(ktg.Vertex(i), kws...)
		}
		net, err := b.Build()
		if err != nil {
			return false
		}
		q := ktg.Query{
			Keywords:  vocab[:1+r.Intn(len(vocab))],
			GroupSize: 1 + r.Intn(3),
			Tenuity:   r.Intn(3),
			TopN:      1 + r.Intn(3),
		}
		want, err := net.Search(q, ktg.SearchOptions{Algorithm: ktg.AlgBruteForce})
		if err != nil {
			return false
		}
		for _, alg := range []ktg.Algorithm{ktg.AlgVKCDeg, ktg.AlgVKC, ktg.AlgQKC} {
			got, err := net.Search(q, ktg.SearchOptions{Algorithm: alg})
			if err != nil {
				return false
			}
			if len(got.Groups) != len(want.Groups) {
				return false
			}
			for i := range got.Groups {
				if got.Groups[i].QKC != want.Groups[i].QKC {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmString(t *testing.T) {
	cases := map[ktg.Algorithm]string{
		ktg.AlgVKCDeg:     "KTG-VKC-DEG",
		ktg.AlgVKC:        "KTG-VKC",
		ktg.AlgQKC:        "KTG-QKC",
		ktg.AlgBruteForce: "BruteForce",
	}
	for alg, want := range cases {
		if got := alg.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", alg, got, want)
		}
		if got := fmt.Sprint(alg); got != want {
			t.Errorf("Sprint = %q", got)
		}
	}
}

func TestCappedVsUncappedSameAnswers(t *testing.T) {
	n := reviewerNetwork(t)
	capped, err := n.Search(reviewerQuery, ktg.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	uncapped, err := n.Search(reviewerQuery, ktg.SearchOptions{UncappedPruneBound: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Groups) != len(uncapped.Groups) {
		t.Fatal("bound cap changed result count")
	}
	for i := range capped.Groups {
		if capped.Groups[i].QKC != uncapped.Groups[i].QKC {
			t.Fatal("bound cap changed coverage profile")
		}
	}
	if uncapped.Stats.Nodes < capped.Stats.Nodes {
		t.Errorf("uncapped explored fewer nodes (%d) than capped (%d)",
			uncapped.Stats.Nodes, capped.Stats.Nodes)
	}
}

func TestAuditTenuity(t *testing.T) {
	n := reviewerNetwork(t)
	// {0, 6, 10}: all pairwise distances are 2.
	a := n.AuditTenuity([]ktg.Vertex{0, 6, 10}, 1, 8, nil)
	if a.KLines != 0 || a.MinDistance != 2 || a.Pairs != 3 {
		t.Errorf("audit k=1: %+v", a)
	}
	idx, err := n.BuildNLRNL()
	if err != nil {
		t.Fatal(err)
	}
	b := n.AuditTenuity([]ktg.Vertex{0, 6, 10}, 2, 8, idx)
	if b.KLines != 3 || b.KTriangles != 1 || b.KTenuity != 1 {
		t.Errorf("audit k=2: %+v", b)
	}
	// Search results must audit clean.
	res, err := n.Search(reviewerQuery, ktg.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Groups {
		a := n.AuditTenuity(g.Members, reviewerQuery.Tenuity, 8, idx)
		if a.KLines != 0 {
			t.Errorf("search result has %d k-lines", a.KLines)
		}
	}
}
