package ktg_test

import (
	"fmt"
	"log"

	"ktg"
)

// ExampleNetwork_Search finds one tenuous pair on a small path network.
func ExampleNetwork_Search() {
	b := ktg.NewBuilder(0)
	b.AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3).AddEdge(3, 4)
	b.SetKeywords(0, "databases", "graphs")
	b.SetKeywords(2, "machine learning")
	b.SetKeywords(4, "graphs", "systems")
	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	res, err := net.Search(ktg.Query{
		Keywords:  []string{"databases", "graphs", "systems"},
		GroupSize: 2,
		Tenuity:   1,
		TopN:      1,
	}, ktg.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	g := res.Groups[0]
	fmt.Println(g.Members, g.Covered)
	// Output: [0 4] [databases graphs systems]
}

// ExampleNetwork_SearchDiverse shows disjoint diversified groups.
func ExampleNetwork_SearchDiverse() {
	b := ktg.NewBuilder(6)
	// Two separate components, each holding a feasible pair.
	b.AddEdge(0, 1).AddEdge(3, 4)
	b.SetKeywords(0, "a")
	b.SetKeywords(2, "b")
	b.SetKeywords(3, "a")
	b.SetKeywords(5, "b")
	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	dr, err := net.SearchDiverse(ktg.Query{
		Keywords:  []string{"a", "b"},
		GroupSize: 2,
		Tenuity:   1,
		TopN:      2,
	}, ktg.DiverseOptions{Gamma: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(dr.Groups), dr.Diversity)
	// Output: 2 1
}

// ExampleLiveNetwork mutates a served network the way POST /v1/edges
// does: each batch publishes a new epoch while searches keep reading the
// epoch they resolved.
func ExampleLiveNetwork() {
	b := ktg.NewBuilder(0)
	b.AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3).AddEdge(3, 4)
	b.SetKeywords(0, "databases")
	b.SetKeywords(4, "systems")
	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	idx, err := net.BuildNLRNL()
	if err != nil {
		log.Fatal(err)
	}
	liveNet, err := ktg.NewLiveNetwork(net, idx)
	if err != nil {
		log.Fatal(err)
	}

	// Resolve one epoch and search it: 0 and 4 are 4 hops apart, a
	// valid 1-tenuous pair.
	v := liveNet.View()
	res, err := v.Network.Search(ktg.Query{
		Keywords: []string{"databases", "systems"}, GroupSize: 2, Tenuity: 1, TopN: 1,
	}, ktg.SearchOptions{Index: v.Index})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("epoch", v.Epoch, res.Groups[0].Members)

	// A shortcut edge (the wire body {"op":"insert","u":0,"v":4})
	// publishes epoch 2; the pair is no longer tenuous there.
	mut, err := liveNet.ApplyEdges([]ktg.EdgeOp{{Insert: true, U: 0, V: 4}})
	if err != nil {
		log.Fatal(err)
	}
	v2 := liveNet.View()
	res2, err := v2.Network.Search(ktg.Query{
		Keywords: []string{"databases", "systems"}, GroupSize: 2, Tenuity: 1, TopN: 1,
	}, ktg.SearchOptions{Index: v2.Index})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("epoch", mut.Epoch, "applied", mut.Applied, "groups", len(res2.Groups))

	// The old epoch still answers exactly as before the mutation.
	fmt.Println("old epoch still sees", v.Network.NumEdges(), "edges")
	// Output:
	// epoch 1 [0 4]
	// epoch 2 applied 1 groups 0
	// old epoch still sees 4 edges
}

// ExampleNetwork_AuditTenuity audits an arbitrary member set.
func ExampleNetwork_AuditTenuity() {
	b := ktg.NewBuilder(4)
	b.AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3)
	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	audit := net.AuditTenuity([]ktg.Vertex{0, 2, 3}, 1, 4, nil)
	fmt.Println(audit.KLines, audit.MinDistance)
	// Output: 1 1
}
