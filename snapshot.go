package ktg

import (
	"ktg/internal/index"
	"ktg/internal/persist"
)

// SnapshotOutcome reports how a LoadOrBuild call obtained its index:
// whether the on-disk snapshot was used, why it was rejected if not,
// and whether the rebuilt index was re-persisted. Reason is one of
// "loaded", "missing", "version", "fingerprint", "param", "corrupt".
type SnapshotOutcome = index.LoadOutcome

// LoadOrBuildNL returns an NL index from the snapshot at path when it
// is present, uncorrupted, and matches this network (and h, when h > 0)
// — and otherwise rebuilds it and crash-atomically re-saves the fresh
// snapshot over path. Snapshot problems never fail the call: they are
// classified in the outcome (and on the ktg_index_snapshot_* metrics)
// and the index is rebuilt from the graph instead. Only a rebuild
// failure returns an error.
func (n *Network) LoadOrBuildNL(path string, h int) (*NLIndex, SnapshotOutcome, error) {
	nl, out, err := index.LoadOrBuildNL(path, n.g, index.NLOptions{
		H: h, Tracer: n.tracer, Logger: n.logger,
	})
	if err != nil {
		return nil, out, err
	}
	return &NLIndex{nl: nl}, out, nil
}

// LoadOrBuildNLRNL is LoadOrBuildNL for the NLRNL index.
func (n *Network) LoadOrBuildNLRNL(path string) (*NLRNLIndex, SnapshotOutcome, error) {
	x, out, err := index.LoadOrBuildNLRNL(path, n.g, index.NLRNLOptions{
		Tracer: n.tracer, Logger: n.logger,
	})
	if err != nil {
		return nil, out, err
	}
	return &NLRNLIndex{x: x}, out, nil
}

// SaveFile persists the index to path crash-atomically: the bytes are
// written to a temp file in the same directory, fsynced, and renamed
// into place, so a crash mid-save leaves any previous snapshot intact.
func (x *NLIndex) SaveFile(path string) error {
	return persist.WriteFileAtomic(path, x.nl.Save)
}

// SaveFile persists the index to path crash-atomically (see
// NLIndex.SaveFile).
func (x *NLRNLIndex) SaveFile(path string) error {
	return persist.WriteFileAtomic(path, x.x.Save)
}
