package ktg

import (
	"fmt"
	"io"
	"log/slog"
	"sort"

	"ktg/internal/gen"
	"ktg/internal/graph"
	"ktg/internal/keywords"
)

// Vertex identifies a member of a Network. Identifiers are dense uint32
// values in [0, NumVertices).
type Vertex = uint32

// Network is an immutable attributed social network: an undirected
// simple graph plus a keyword profile per vertex.
type Network struct {
	g      *graph.Graph
	attrs  *keywords.Attributes
	name   string
	logger *slog.Logger
	tracer Tracer
}

// SetLogger injects a structured logger used by every search and index
// build on this network unless a per-search SearchOptions.Logger
// overrides it. nil restores the package default (set with
// SetDefaultLogger; silent out of the box).
func (n *Network) SetLogger(l *slog.Logger) { n.logger = l }

// SetTracer injects a tracer used by every index build on this network
// and by searches whose SearchOptions.Tracer is nil. nil disables.
func (n *Network) SetTracer(t Tracer) { n.tracer = t }

// Name returns the network's label ("" unless set by a loader/generator).
func (n *Network) Name() string { return n.name }

// NumVertices returns the number of vertices.
func (n *Network) NumVertices() int { return n.g.NumVertices() }

// NumEdges returns the number of undirected edges.
func (n *Network) NumEdges() int { return n.g.NumEdges() }

// Degree returns the number of social ties of v.
func (n *Network) Degree(v Vertex) int { return n.g.Degree(v) }

// Neighbors returns v's direct contacts in increasing id order. The
// returned slice must not be modified.
func (n *Network) Neighbors(v Vertex) []Vertex { return n.g.Neighbors(v) }

// Keywords returns v's keyword profile in alphabetical order.
func (n *Network) Keywords(v Vertex) []string {
	names := n.attrs.KeywordNames(v)
	sort.Strings(names)
	return names
}

// VocabularySize returns the number of distinct keywords in the network.
func (n *Network) VocabularySize() int { return n.attrs.Vocabulary().Size() }

// AverageDegree returns 2|E|/|V|.
func (n *Network) AverageDegree() float64 { return n.g.AverageDegree() }

// withGraph returns a shallow copy of the network serving a different
// topology over the same keyword profiles, logger, and tracer. The live
// mutation layer publishes one such copy per epoch; each copy is itself
// immutable, preserving the Network contract.
func (n *Network) withGraph(g *graph.Graph) *Network {
	c := *n
	c.g = g
	return &c
}

// Builder assembles a Network from edges and keyword profiles.
type Builder struct {
	gb    *graph.Builder
	attrs map[Vertex][]string
	n     int
}

// NewBuilder returns a Builder for a network with at least n vertices
// (more are implied by larger vertex ids in AddEdge/SetKeywords).
func NewBuilder(n int) *Builder {
	return &Builder{gb: graph.NewBuilder(n), attrs: make(map[Vertex][]string), n: n}
}

// AddEdge records the undirected social tie {u, v}. Self-loops and
// duplicates are ignored.
func (b *Builder) AddEdge(u, v Vertex) *Builder {
	b.gb.AddEdge(u, v)
	b.grow(u)
	b.grow(v)
	return b
}

// SetKeywords assigns vertex v's keyword profile, replacing any previous
// assignment.
func (b *Builder) SetKeywords(v Vertex, kws ...string) *Builder {
	b.attrs[v] = append([]string(nil), kws...)
	b.grow(v)
	return b
}

func (b *Builder) grow(v Vertex) {
	if int(v) >= b.n {
		b.n = int(v) + 1
	}
}

// Build produces the immutable Network.
func (b *Builder) Build() (*Network, error) {
	g := b.gb.Build()
	size := g.NumVertices()
	if b.n > size {
		size = b.n
	}
	if size > g.NumVertices() {
		// Isolated high-id vertices exist only in attrs; rebuild with
		// the larger vertex count.
		gb := graph.NewBuilder(size)
		g.Edges(func(u, v Vertex) bool { gb.AddEdge(u, v); return true })
		g = gb.Build()
	}
	attrs := keywords.NewAttributes(size, nil)
	for v := 0; v < size; v++ {
		if kws, ok := b.attrs[Vertex(v)]; ok {
			attrs.Assign(Vertex(v), kws...)
		}
	}
	return &Network{g: g, attrs: attrs}, nil
}

// LoadNetwork reads a network from an edge list (SNAP text format; see
// WriteEdgeList) and an optional keyword attribute file (nil for a
// keyword-free network).
func LoadNetwork(edges io.Reader, attrs io.Reader) (*Network, error) {
	g, err := graph.ReadEdgeList(edges, 0)
	if err != nil {
		return nil, err
	}
	var a *keywords.Attributes
	if attrs != nil {
		a, err = keywords.ReadAttributes(attrs, g.NumVertices(), nil)
		if err != nil {
			return nil, err
		}
	} else {
		a = keywords.NewAttributes(g.NumVertices(), nil)
	}
	return &Network{g: g, attrs: a}, nil
}

// SaveEdgeList writes the network's topology in the format LoadNetwork
// reads.
func (n *Network) SaveEdgeList(w io.Writer) error {
	return graph.WriteEdgeList(w, n.g)
}

// SaveAttributes writes the network's keyword profiles in the format
// LoadNetwork reads.
func (n *Network) SaveAttributes(w io.Writer) error {
	return keywords.WriteAttributes(w, n.attrs)
}

// GeneratePreset synthesizes one of the paper's evaluation datasets at
// the given scale in (0, 1]; see Presets for the available names. The
// generated network reproduces each dataset's average degree and a
// Zipfian keyword distribution (the properties the KTG algorithms are
// sensitive to) and is deterministic for a given name and scale.
func GeneratePreset(name string, scale float64) (*Network, error) {
	d, err := gen.GeneratePreset(name, scale)
	if err != nil {
		return nil, err
	}
	return &Network{g: d.Graph, attrs: d.Attrs, name: d.Config.Name}, nil
}

// Presets lists the known dataset preset names.
func Presets() []string { return gen.PresetNames() }

// PopularKeywords returns up to limit keyword names ordered by how many
// vertices carry them — a convenient source of query keywords.
func (n *Network) PopularKeywords(limit int) []string {
	type kc struct {
		id    keywords.ID
		count int
	}
	counts := make([]int, n.attrs.Vocabulary().Size())
	for v := 0; v < n.NumVertices(); v++ {
		for _, id := range n.attrs.Keywords(Vertex(v)) {
			counts[id]++
		}
	}
	all := make([]kc, 0, len(counts))
	for id, c := range counts {
		if c > 0 {
			all = append(all, kc{keywords.ID(id), c})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].id < all[j].id
	})
	if limit > len(all) {
		limit = len(all)
	}
	out := make([]string, limit)
	for i := 0; i < limit; i++ {
		out[i] = n.attrs.Vocabulary().Name(all[i].id)
	}
	return out
}

// String summarizes the network.
func (n *Network) String() string {
	return fmt.Sprintf("Network(%s: %d vertices, %d edges, %d keywords)",
		n.name, n.NumVertices(), n.NumEdges(), n.VocabularySize())
}
