package ktg

import "ktg/internal/core"

// Probe collects a per-query explain plan and lock-free live progress
// while a search runs. Attach one via SearchOptions.Probe (or through
// DiverseOptions / SearchGreedyWith), then read Explain() after the
// search returns, or Snapshot() at any time while it runs. A nil probe
// costs the search one branch per node; allocate a fresh Probe per
// query.
//
// These are aliases of the core types so the explain block travels the
// wire with one JSON definition at every layer (server, client,
// coordinator), the same way SearchStats does.
type Probe = core.Probe

// SearchProgress is one point-in-time snapshot of a running search,
// published via atomic pointer so concurrent readers never see a torn
// write.
type SearchProgress = core.Progress

// Explain is the structured explain plan of one search: totals, the
// per-depth expand/prune/filter breakdown attributed by reason
// (Theorem 2 bound prunes vs Theorem 3 k-line filtering vs abort), and
// the bound trajectory of top-N improvements.
type Explain = core.Explain

// ExplainDepth is one per-depth row of an explain plan.
type ExplainDepth = core.ExplainDepth

// BoundStep is one top-N improvement in the bound trajectory.
type BoundStep = core.BoundStep

// ShardExplain is one shard's contribution to a merged explain plan.
type ShardExplain = core.ShardExplain

// MergeExplains combines per-shard explain plans into one merged plan:
// counters and depth rows sum, bound trajectories interleave in time
// order with 1-based shard attribution, and the per-shard breakdown is
// retained so frontier skew stays visible. urls, when non-nil, labels
// each shard's base URL and must parallel parts.
func MergeExplains(parts []*Explain, urls []string) *Explain {
	return core.MergeExplains(parts, urls)
}
