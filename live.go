package ktg

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ktg/internal/graph"
	"ktg/internal/live"
	"ktg/internal/wal"
)

// EdgeOp is one edge insertion (Insert true) or deletion (Insert false)
// applied to a LiveNetwork.
type EdgeOp struct {
	Insert bool
	U, V   Vertex
}

// LiveView is one published epoch of a LiveNetwork: an immutable Network
// snapshot plus the distance index maintained for exactly that topology
// (nil in the index-free configuration — leave SearchOptions.Index nil
// and each search runs a private BFS oracle over the snapshot). A view
// never changes after publication, so any number of searches may use it
// concurrently and for as long as they like.
type LiveView struct {
	Epoch   uint64
	Network *Network
	Index   DistanceIndex
}

// MutationResult reports what one ApplyEdges batch did.
type MutationResult struct {
	// Epoch is the epoch serving after the batch. It grows by exactly 1
	// when the batch changed the graph and is unchanged otherwise.
	Epoch uint64
	// Swapped reports whether a new view was published.
	Swapped bool
	// Applied counts ops that changed the graph; Ignored counts
	// duplicate inserts, missing deletes, and self-loops.
	Applied, Ignored int
	// AffectedVertices is the deduplicated union of vertices whose
	// distance vectors the batch may have changed (§V-B rules), in
	// increasing id order.
	AffectedVertices []Vertex
	// AffectedKeywords is the sorted union of the affected vertices'
	// keywords. A cached query answer can only be stale if its query
	// keywords intersect this set — the basis for mutation-scoped result
	// cache invalidation.
	AffectedKeywords []string
	// ApplyDuration covers copy-on-write maintenance of the writer
	// replica; SwapDuration covers snapshot freeze + pointer publish.
	ApplyDuration, SwapDuration time.Duration
}

// LiveNetwork serves a mutable social network under concurrent searches
// using epoch-swapped copy-on-write (see internal/live): View() is one
// atomic pointer load and returns an immutable epoch that in-flight
// searches keep using while ApplyEdges publishes successors — readers
// never block on writers. Epochs start at 1.
type LiveNetwork struct {
	base *Network
	mgr  *live.Manager

	// Durable-mode state (see NewLiveNetworkDurable); all nil/zero for a
	// purely in-memory handle.
	wal             *wal.Log
	checkpointEvery uint64
	recovery        *RecoveryStats
	logger          *slog.Logger

	mu   sync.Mutex // serializes ApplyEdges (manager + view publish)
	view atomic.Pointer[LiveView]
}

// NewLiveNetwork wraps a network and the index built for it (one of
// Network.BuildNL / BuildNLRNL results, or nil for the index-free BFS
// configuration) into a mutable serving handle. Ownership of the index
// transfers: the caller must not use or mutate idx afterwards, and must
// go through View() for all reads. PLL has no dynamic maintenance and is
// rejected.
func NewLiveNetwork(n *Network, idx DistanceIndex) (*LiveNetwork, error) {
	var r live.Replica
	switch x := idx.(type) {
	case nil:
		r = live.NewGraphReplica(graph.MutableFrom(n.g))
	case *NLIndex:
		r = live.NewNLReplica(graph.MutableFrom(n.g), x.nl)
	case *NLRNLIndex:
		r = live.NewNLRNLReplica(x.x)
	default:
		return nil, fmt.Errorf("ktg: index %q does not support live mutation", idx.Name())
	}
	ln := &LiveNetwork{base: n, mgr: live.NewManager(r)}
	ln.view.Store(ln.derive(ln.mgr.Current()))
	return ln, nil
}

// View returns the current epoch. The result is immutable; searches that
// must be self-consistent should resolve one view and use its Network
// and Index together.
func (ln *LiveNetwork) View() *LiveView { return ln.view.Load() }

// Epoch returns the current epoch number.
func (ln *LiveNetwork) Epoch() uint64 { return ln.view.Load().Epoch }

// Base returns the network the live handle was created from (epoch 1's
// topology). Keyword profiles are shared by every epoch.
func (ln *LiveNetwork) Base() *Network { return ln.base }

// ApplyEdges applies a batch of edge mutations and, if any op changed
// the graph, publishes the next epoch. Concurrent callers serialize;
// readers are never blocked.
func (ln *LiveNetwork) ApplyEdges(ops []EdgeOp) (*MutationResult, error) {
	ln.mu.Lock()
	defer ln.mu.Unlock()

	lops := make([]live.EdgeOp, len(ops))
	for i, op := range ops {
		lops[i] = live.EdgeOp{Insert: op.Insert, U: op.U, V: op.V}
	}
	r, err := ln.mgr.Apply(lops)
	if err != nil {
		return nil, err
	}
	res := &MutationResult{
		Epoch:            r.Epoch,
		Swapped:          r.Swapped,
		Applied:          r.Applied,
		Ignored:          r.Ignored,
		AffectedVertices: r.Affected,
		ApplyDuration:    r.ApplyDur,
		SwapDuration:     r.SwapDur,
	}
	if r.Swapped {
		res.AffectedKeywords = ln.keywordsOf(r.Affected)
		cur := ln.mgr.Current()
		ln.view.Store(ln.derive(cur))
		ln.maybeCheckpoint(cur)
	}
	return res, nil
}

// derive maps an internal epoch view onto the public Network / Index
// surface.
func (ln *LiveNetwork) derive(v *live.View) *LiveView {
	lv := &LiveView{Epoch: v.Epoch, Network: ln.base.withGraph(v.Graph)}
	switch r := v.Replica.(type) {
	case *live.NLRNLReplica:
		lv.Index = &NLRNLIndex{x: r.X}
	case *live.NLReplica:
		lv.Index = &NLIndex{nl: r.NL}
	}
	return lv
}

// keywordsOf returns the sorted deduplicated keyword names over vs.
func (ln *LiveNetwork) keywordsOf(vs []Vertex) []string {
	set := make(map[string]struct{})
	for _, v := range vs {
		for _, kw := range ln.base.attrs.KeywordNames(v) {
			set[kw] = struct{}{}
		}
	}
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for kw := range set {
		out = append(out, kw)
	}
	sort.Strings(out)
	return out
}
