package ktg_test

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"ktg"
	"ktg/internal/persist"
	"ktg/internal/wal"
)

// durableOpen is the test shorthand for a durable live handle over the
// Figure 1 network with an NLRNL index.
func durableOpen(t *testing.T, dir string, cfg ktg.WALConfig) (*ktg.LiveNetwork, *ktg.RecoveryStats) {
	t.Helper()
	n := reviewerNetwork(t)
	idx, err := n.BuildNLRNL()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dir = dir
	ln, stats, err := ktg.NewLiveNetworkDurable(n, idx, cfg)
	if err != nil {
		t.Fatalf("NewLiveNetworkDurable: %v", err)
	}
	return ln, stats
}

// answer runs the reviewer query on the current view.
func answer(t *testing.T, ln *ktg.LiveNetwork) (uint64, []ktg.Group) {
	t.Helper()
	v := ln.View()
	res, err := v.Network.Search(reviewerQuery, ktg.SearchOptions{Index: v.Index})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	return v.Epoch, res.Groups
}

// TestDurableCrashRecovery proves the core contract end to end: acked
// mutations survive an abrupt crash (the handle is simply abandoned,
// never Closed), the restart republishes the exact pre-crash epoch, and
// a mutated-edge-sensitive query answers identically.
func TestDurableCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	ln, stats := durableOpen(t, dir, ktg.WALConfig{Sync: "always"})
	if stats.RecordsReplayed != 0 || stats.Epoch != 1 {
		t.Fatalf("fresh log recovery stats = %+v, want epoch 1, 0 records", stats)
	}
	if !ln.Durable() || ln.Recovery() == nil {
		t.Fatal("durable handle does not report as durable")
	}

	// Three acked batches, the middle one deliberately half-ignored so
	// the log must store effective ops only.
	batches := [][]ktg.EdgeOp{
		{{Insert: true, U: 1, V: 5}},
		{{Insert: true, U: 1, V: 5}, {Insert: true, U: 2, V: 7}}, // first op is now a duplicate
		{{Insert: false, U: 0, V: 1}},
	}
	var lastEpoch uint64
	for i, ops := range batches {
		res, err := ln.ApplyEdges(ops)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if !res.Swapped {
			t.Fatalf("batch %d did not swap", i)
		}
		lastEpoch = res.Epoch
	}
	if lastEpoch != 4 {
		t.Fatalf("epoch after 3 effective batches = %d, want 4", lastEpoch)
	}
	wantEpoch, wantGroups := answer(t, ln)
	// Crash: no Close, the *Log is abandoned with its file handles.

	ln2, stats2 := durableOpen(t, dir, ktg.WALConfig{Sync: "always"})
	defer ln2.Close()
	if stats2.Epoch != lastEpoch || stats2.RecordsReplayed != 3 {
		t.Fatalf("recovery stats = %+v, want epoch %d from 3 records", stats2, lastEpoch)
	}
	if stats2.OpsReplayed != 3 { // effective ops only: 1 + 1 + 1
		t.Errorf("replayed %d ops, want 3 (the ignored duplicate must not be logged)", stats2.OpsReplayed)
	}
	gotEpoch, gotGroups := answer(t, ln2)
	if gotEpoch != wantEpoch {
		t.Errorf("recovered epoch %d, want %d", gotEpoch, wantEpoch)
	}
	if !reflect.DeepEqual(gotGroups, wantGroups) {
		t.Errorf("recovered answer differs:\n  before crash %+v\n  after        %+v", wantGroups, gotGroups)
	}

	// The recovered handle keeps acking and re-minting epochs from the
	// exact continuation point.
	res, err := ln2.ApplyEdges([]ktg.EdgeOp{{Insert: true, U: 0, V: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != lastEpoch+1 {
		t.Errorf("post-recovery epoch %d, want %d", res.Epoch, lastEpoch+1)
	}
}

// TestDurableCheckpointRecovery drives enough epochs to cross a
// checkpoint and proves the restart starts from the snapshot, replays
// only the suffix, and still lands on the identical state.
func TestDurableCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	ln, _ := durableOpen(t, dir, ktg.WALConfig{Sync: "off", CheckpointEvery: 4})

	// 10 effective single-op batches: epochs 2..11, checkpoints at 4 and
	// 8 (the later one supersedes the earlier).
	var lastEpoch uint64
	for i := 0; i < 10; i++ {
		u, v := ktg.Vertex(i%6), ktg.Vertex(6+i%6)
		op := ktg.EdgeOp{Insert: true, U: u, V: v}
		res, err := ln.ApplyEdges([]ktg.EdgeOp{op})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Swapped {
			// Toggle collisions delete instead; keep the batch effective.
			res, err = ln.ApplyEdges([]ktg.EdgeOp{{Insert: false, U: u, V: v}})
			if err != nil || !res.Swapped {
				t.Fatalf("batch %d never swapped (%v)", i, err)
			}
		}
		lastEpoch = res.Epoch
	}
	wantEpoch, wantGroups := answer(t, ln)

	snaps, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("want exactly one retained checkpoint, got %v", snaps)
	}

	ln2, stats := durableOpen(t, dir, ktg.WALConfig{Sync: "off", CheckpointEvery: 4})
	defer ln2.Close()
	if stats.CheckpointEpoch == 0 {
		t.Fatal("recovery ignored the checkpoint")
	}
	if stats.Epoch != lastEpoch {
		t.Fatalf("recovered epoch %d, want %d", stats.Epoch, lastEpoch)
	}
	if want := int(lastEpoch - stats.CheckpointEpoch); stats.RecordsReplayed != want {
		t.Errorf("replayed %d records over the epoch-%d checkpoint, want %d",
			stats.RecordsReplayed, stats.CheckpointEpoch, want)
	}
	gotEpoch, gotGroups := answer(t, ln2)
	if gotEpoch != wantEpoch || !reflect.DeepEqual(gotGroups, wantGroups) {
		t.Errorf("checkpointed recovery diverged: epoch %d vs %d", gotEpoch, wantEpoch)
	}
}

// TestDurableTornTail cuts bytes off the final segment — the on-disk
// image of a crash mid-append — and requires recovery to truncate the
// damage, land on the last complete record's epoch, and keep serving.
func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	ln, _ := durableOpen(t, dir, ktg.WALConfig{Sync: "always"})
	var lastEpoch uint64
	for i := 0; i < 4; i++ {
		res, err := ln.ApplyEdges([]ktg.EdgeOp{{Insert: true, U: ktg.Vertex(i), V: ktg.Vertex(7 + i)}})
		if err != nil || !res.Swapped {
			t.Fatalf("batch %d: %v", i, err)
		}
		lastEpoch = res.Epoch
	}

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) != 1 {
		t.Fatalf("want one segment, got %v", segs)
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-2); err != nil {
		t.Fatal(err)
	}

	ln2, stats := durableOpen(t, dir, ktg.WALConfig{Sync: "always"})
	defer ln2.Close()
	if !stats.TornTail || stats.TornBytes == 0 {
		t.Errorf("torn tail not reported: %+v", stats)
	}
	if stats.Epoch != lastEpoch-1 {
		t.Errorf("recovered epoch %d, want %d (the last complete record)", stats.Epoch, lastEpoch-1)
	}
	v := ln2.View()
	if hasNeighbor(v.Network, 3, 10) {
		t.Error("the torn final record's edge survived recovery")
	}
	if !hasNeighbor(v.Network, 2, 9) {
		t.Error("an intact record's edge was lost with the tail")
	}
}

func hasNeighbor(n *ktg.Network, u, v ktg.Vertex) bool {
	for _, w := range n.Neighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}

// TestDurableBaseMismatch: a WAL recorded for one graph refuses to
// attach to another.
func TestDurableBaseMismatch(t *testing.T) {
	dir := t.TempDir()
	ln, _ := durableOpen(t, dir, ktg.WALConfig{Sync: "off"})
	ln.Close()

	b := ktg.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.SetKeywords(0, "A")
	other, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ktg.NewLiveNetworkDurable(other, nil, ktg.WALConfig{Dir: dir, Sync: "off"})
	if !errors.Is(err, persist.ErrFingerprintMismatch) {
		t.Errorf("foreign base: err = %v, want ErrFingerprintMismatch", err)
	}
}

// TestDurableReplayDivergence forges a CRC-valid record whose ops do
// not re-apply effectively (a duplicate of the base topology); recovery
// must refuse to serve rather than publish a silently divergent view.
func TestDurableReplayDivergence(t *testing.T) {
	dir := t.TempDir()
	n := reviewerNetwork(t)
	base := baseFingerprint(t, n)

	l, err := wal.Open(wal.Config{Dir: dir, Base: base, Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Replay(func(wal.Record) error { return nil }, nil); err != nil {
		t.Fatal(err)
	}
	// Edge 0-1 exists in the base graph: replaying this "insert" applies
	// 0 of 1 ops, which a faithful log can never produce.
	if err := l.Append(wal.Record{Epoch: 2, Ops: []wal.EdgeOp{{Insert: true, U: 0, V: 1}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, _, err = ktg.NewLiveNetworkDurable(n, nil, ktg.WALConfig{Dir: dir, Sync: "off"})
	if !errors.Is(err, wal.ErrReplayDiverged) {
		t.Errorf("forged no-op record: err = %v, want ErrReplayDiverged", err)
	}
}

// baseFingerprint extracts the network's base-graph fingerprint the way
// the WAL records it: by initializing a scratch durable handle and
// reading the manifest it writes.
func baseFingerprint(t *testing.T, n *ktg.Network) persist.Fingerprint {
	t.Helper()
	scratch := t.TempDir()
	ln, _, err := ktg.NewLiveNetworkDurable(n, nil, ktg.WALConfig{Dir: scratch, Sync: "off"})
	if err != nil {
		t.Fatal(err)
	}
	ln.Close()
	raw, err := os.ReadFile(filepath.Join(scratch, "MANIFEST.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Base struct {
			Vertices   uint64 `json:"vertices"`
			AdjEntries uint64 `json:"adj_entries"`
			CRC        string `json:"crc"`
		} `json:"base"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	crc, err := strconv.ParseUint(m.Base.CRC, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	return persist.Fingerprint{Vertices: m.Base.Vertices, AdjEntries: m.Base.AdjEntries, CRC: crc}
}
