#!/bin/sh
# Repo verification gate: build everything, vet, and run the full test
# suite under the race detector. CI and pre-commit both run this.
set -eux

cd "$(dirname "$0")"

go build ./...
go vet ./...
go test -race ./...
