#!/bin/sh
# Repo verification gate: build everything, vet, run the full test
# suite under the race detector, then smoke the query server end to
# end. CI and pre-commit both run this.
set -eux

cd "$(dirname "$0")"

go build ./...
go vet ./...
go test -race ./...

# --- query-server end-to-end smoke -----------------------------------
# Boot ktgserver on a random port, answer one KTG and one DKTG query
# (200 + valid JSON, second identical query must be a cache hit), then
# shut down cleanly via SIGTERM.
tmp=$(mktemp -d "$(pwd)/.verify-tmp.XXXXXX")
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/ktgserver" ./cmd/ktgserver
"$tmp/ktgserver" -addr 127.0.0.1:0 -presets brightkite -scale 0.02 \
    -timeout 30s 2>"$tmp/server.log" &
server_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*ktgserver listening.*addr=\([^ ]*\).*/\1/p' "$tmp/server.log" | head -n 1)
    [ -n "$addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { cat "$tmp/server.log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "ktgserver never reported its address"; cat "$tmp/server.log"; exit 1; }

go run ./internal/server/smokeclient -addr "$addr"

kill -TERM "$server_pid"
wait "$server_pid"   # graceful shutdown must exit 0
server_pid=""
grep -q "ktgserver stopped" "$tmp/server.log"
echo "verify: ok"
