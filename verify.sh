#!/bin/sh
# Repo verification gate: build everything, vet, run the full test
# suite under the race detector, then smoke the query server end to
# end — including snapshot corruption recovery. CI and pre-commit both
# run this.
set -eux

cd "$(dirname "$0")"

go build ./...
go vet ./...
# staticcheck is best-effort: run it when installed, complain loudly (but
# do not fail) when it is not, so CI images that carry it get the extra
# signal without making it a local prerequisite.
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "verify: staticcheck not installed; SKIPPING static analysis" >&2
fi
./scripts/check_metrics_docs.sh
# The observability packages carry the concurrency-heavy request-scope
# machinery, internal/live the epoch-swap reader/writer dance, and
# internal/wal the fsync/append interleaving under the durability
# barrier; race-test them explicitly (and first), then everything —
# including the live-mutation and crash/restart chaos soaks in
# internal/server and the fleet restart soak in internal/shard.
go test -race ./internal/obs ./internal/server ./internal/live ./internal/wal ./internal/shard
go test -race ./...

# Perf-drift gate: re-run the committed "small" experiment and fail on
# >2x regressions against BENCH_small.json (see scripts/check_bench.sh).
./scripts/check_bench.sh

# --- query-server end-to-end smoke -----------------------------------
# Boot ktgserver on a random port, answer one KTG and one DKTG query
# (200 + valid JSON, second identical query must be a cache hit), then
# shut down cleanly via SIGTERM.
tmp=$(mktemp -d "$(pwd)/.verify-tmp.XXXXXX")
server_pid=""
shard1_pid=""
shard2_pid=""
coord_pid=""
cleanup() {
    for p in $server_pid $shard1_pid $shard2_pid $coord_pid; do
        kill "$p" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/ktgserver" ./cmd/ktgserver

# boot_server LOGFILE [extra flags...] — start ktgserver in the
# background and wait for its listen address; sets $server_pid / $addr.
boot_server() {
    _log=$1; shift
    "$tmp/ktgserver" -addr 127.0.0.1:0 -presets brightkite -scale 0.02 \
        -timeout 30s "$@" 2>"$_log" &
    server_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/.*ktgserver listening.*addr=\([^ ]*\).*/\1/p' "$_log" | head -n 1)
        [ -n "$addr" ] && break
        kill -0 "$server_pid" 2>/dev/null || { cat "$_log"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "ktgserver never reported its address"; cat "$_log"; exit 1; }
}

# stop_server — graceful SIGTERM shutdown; must exit 0.
stop_server() {
    kill -TERM "$server_pid"
    wait "$server_pid"
    server_pid=""
}

boot_server "$tmp/server.log"
go run ./internal/server/smokeclient -addr "$addr"
stop_server
grep -q "ktgserver stopped" "$tmp/server.log"

# --- live-mutation smoke ---------------------------------------------
# Boot in mutable mode: /v1/datasets must advertise a live epoch, an
# edge batch through POST /v1/edges must swap exactly one new epoch and
# evict the cached answer it staled, and the fresh answer must report
# the new epoch. A mixed read/write ktgload replay then drives epoch
# churn under concurrency.
go build -o "$tmp/ktgload" ./cmd/ktgload

boot_server "$tmp/mutable.log" -mutable
grep -q "mutable=true" "$tmp/mutable.log"
go run ./internal/server/smokeclient -addr "$addr" -mutate
"$tmp/ktgload" -addr "$addr" -preset brightkite -scale 0.02 \
    -queries 25 -concurrency 4 -seed 42 -mutate-rate 0.3 -mutate-batch 4
stop_server

# --- durability / crash-recovery smoke -------------------------------
# Boot with a WAL, churn epochs with ktgload (recording the highest
# acked epoch), have smokeclient apply a permanent edge flip and record
# the exact epoch + answer a restart must reproduce, then SIGKILL the
# server — no shutdown path runs. The restart against the same -wal-dir
# must log a WAL recovery, serve the exact recorded epoch and answer
# (smokeclient -wal-verify), and pass ktgload's epoch-continuity check:
# an acked mutation missing after restart is a hard failure.
wal="$tmp/wal"
boot_server "$tmp/wal1.log" -mutable -wal-dir "$wal"
"$tmp/ktgload" -addr "$addr" -preset brightkite -scale 0.02 \
    -queries 25 -concurrency 4 -seed 42 -mutate-rate 0.3 -mutate-batch 4 \
    -epoch-file "$tmp/wal.epoch"
go run ./internal/server/smokeclient -addr "$addr" -mutate \
    -wal-prepare -state-file "$tmp/wal.state"
[ -s "$tmp/wal.epoch" ]
kill -9 "$server_pid"
wait "$server_pid" || true
server_pid=""

boot_server "$tmp/wal2.log" -mutable -wal-dir "$wal"
go run ./internal/server/smokeclient -addr "$addr" \
    -wal-verify -state-file "$tmp/wal.state"
# -wal-verify waited for readiness, so replay is over by now. The boot
# log must show it actually recovered from the log, not a fresh start.
grep -q "wal recovery complete" "$tmp/wal2.log"
grep -q "recovering=true" "$tmp/wal2.log"
"$tmp/ktgload" -addr "$addr" -preset brightkite -scale 0.02 \
    -queries 10 -concurrency 2 -seed 43 -mutate-rate 0.3 -mutate-batch 4 \
    -require-epoch-file "$tmp/wal.epoch"
stop_server

# --- snapshot corruption recovery smoke ------------------------------
# First boot with -snapshots builds the index and saves a snapshot.
# Corrupt one byte in the middle of that file; the next boot must
# detect it (reason=corrupt), rebuild from the graph, heal the file,
# and still answer queries. A third boot must load the healed snapshot.
snaps="$tmp/snaps"
snap="$snaps/brightkite.nl.snap"

boot_server "$tmp/snap1.log" -index nl -snapshots "$snaps"
go run ./internal/server/smokeclient -addr "$addr"
stop_server
grep -q "reason=missing" "$tmp/snap1.log"
[ -s "$snap" ]

# Overwrite the middle byte with its successor mod 256 (guaranteed change).
size=$(wc -c < "$snap")
off=$((size / 2))
byte=$(od -An -tu1 -j "$off" -N1 "$snap" | tr -d ' ')
printf "$(printf '\\%03o' $(( (byte + 1) % 256 )))" \
    | dd of="$snap" bs=1 seek="$off" count=1 conv=notrunc 2>/dev/null

boot_server "$tmp/snap2.log" -index nl -snapshots "$snaps"
grep -q "reason=corrupt" "$tmp/snap2.log"
go run ./internal/server/smokeclient -addr "$addr"
stop_server

boot_server "$tmp/snap3.log" -index nl -snapshots "$snaps"
grep -q "reason=loaded" "$tmp/snap3.log"
stop_server

# --- chaos / resilient-client smoke ----------------------------------
# Boot ktgserver with deterministic fault injection (~35% of /v1/*
# requests get latency, 429s, 500s, resets, or truncated bodies) and
# replay a workload through the resilient client. ktgload exits
# non-zero if any query is lost or returns a malformed answer.
boot_server "$tmp/chaos.log" \
    -chaos "seed=7,latency=0.10:1ms-20ms,e429=0.10:0,e500=0.10,e503=0.06,reset=0.04,truncate=0.04"
grep -qi "chaos injection enabled" "$tmp/chaos.log"
"$tmp/ktgload" -addr "$addr" -preset brightkite -scale 0.02 \
    -queries 25 -concurrency 4 -seed 42 -hedge-delay 25ms
stop_server

# --- distributed-tracing smoke ---------------------------------------
# One workload through the resilient client, both sides exporting
# traces. The client's export must hold call + attempt spans, the
# server's must hold request + search spans, and at least one trace ID
# must appear in BOTH files — the traceparent hop stitched them.
# (smokeclient above already asserts the live /debug/traces/{id} path.)
boot_server "$tmp/trace.log" -trace-export "$tmp/server-traces.jsonl"
"$tmp/ktgload" -addr "$addr" -preset brightkite -scale 0.02 \
    -queries 3 -concurrency 1 -seed 42 -trace-export "$tmp/client-traces.jsonl"
stop_server
grep -q '"name":"client /v1/query"' "$tmp/client-traces.jsonl"
grep -q '"name":"client.attempt"' "$tmp/client-traces.jsonl"
grep -q '"name":"server /v1/query"' "$tmp/server-traces.jsonl"
grep -q '"name":"search.query"' "$tmp/server-traces.jsonl"
tid=$(sed -n 's/.*"traceId":"\([0-9a-f]\{32\}\)".*/\1/p' "$tmp/client-traces.jsonl" | head -n 1)
[ -n "$tid" ]
grep -q "$tid" "$tmp/server-traces.jsonl"

# --- scatter-gather smoke --------------------------------------------
# Two shard workers plus a coordinator. A workload through the
# coordinator must (a) lose no query, (b) match a direct single-node
# run group-for-group (ktgload -compare-addr), and (c) leave at least
# one trace ID spanning the coordinator's and a shard's span exports —
# the scatter propagated its traceparent into the partial calls.
go build -o "$tmp/ktgcoord" ./cmd/ktgcoord

boot_server "$tmp/shard1.log" -trace-export "$tmp/shard-traces.jsonl"
shard1_pid=$server_pid; shard1_addr=$addr; server_pid=""
boot_server "$tmp/shard2.log"
shard2_pid=$server_pid; shard2_addr=$addr; server_pid=""

"$tmp/ktgcoord" -addr 127.0.0.1:0 \
    -shards "http://$shard1_addr,http://$shard2_addr" \
    -trace-export "$tmp/coord-traces.jsonl" 2>"$tmp/coord.log" &
coord_pid=$!
coord_addr=""
for _ in $(seq 1 100); do
    coord_addr=$(sed -n 's/.*ktgcoord listening.*addr=\([^ ]*\).*/\1/p' "$tmp/coord.log" | head -n 1)
    [ -n "$coord_addr" ] && break
    kill -0 "$coord_pid" 2>/dev/null || { cat "$tmp/coord.log"; exit 1; }
    sleep 0.1
done
[ -n "$coord_addr" ] || { echo "ktgcoord never reported its address"; cat "$tmp/coord.log"; exit 1; }

"$tmp/ktgload" -addr "$coord_addr" -compare-addr "$shard1_addr" \
    -preset brightkite -scale 0.02 -queries 10 -concurrency 2 -seed 42 -n 2

# An exact query with "explain": true through the coordinator must come
# back with a merged plan attributing both shards, per-depth rows, and
# cache status "bypass" (explain runs are never cached).
curl -fsS -X POST "http://$coord_addr/v1/query" \
    -H 'Content-Type: application/json' \
    -d '{"dataset":"brightkite","keywords":["kw0000","kw0001","kw0002","kw0003"],"group_size":3,"tenuity":1,"top_n":2,"explain":true}' \
    >"$tmp/explain.json"
grep -q '"explain"' "$tmp/explain.json"
grep -Eq '"shard":[[:space:]]*2' "$tmp/explain.json"
grep -q '"depths"' "$tmp/explain.json"
grep -Eq '"cache":[[:space:]]*"bypass"' "$tmp/explain.json"

kill -TERM "$coord_pid"
wait "$coord_pid"
coord_pid=""
grep -q "ktgcoord stopped" "$tmp/coord.log"
server_pid=$shard2_pid; shard2_pid=""; stop_server
server_pid=$shard1_pid; shard1_pid=""; stop_server

grep -q '"name":"coord /v1/query"' "$tmp/coord-traces.jsonl"
grep -q '"name":"server /v1/query/partial"' "$tmp/shard-traces.jsonl"
ctid=$(sed -n 's/.*"traceId":"\([0-9a-f]\{32\}\)".*/\1/p' "$tmp/coord-traces.jsonl" | head -n 1)
[ -n "$ctid" ]
grep -q "$ctid" "$tmp/shard-traces.jsonl"

echo "verify: ok"
