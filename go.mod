module ktg

go 1.22
