package ktg

import (
	"context"
	"errors"
	"log/slog"
	"sort"
	"time"

	"ktg/internal/core"
	"ktg/internal/index"
	"ktg/internal/keywords"
)

// Query carries the KTG query parameters ⟨W_Q, p, k, N⟩.
type Query struct {
	// Keywords is the query keyword set W_Q. Keywords absent from the
	// network still count toward |W_Q| (they are covered by nobody),
	// matching the paper where W_Q comes from the document under
	// review, not from the network.
	Keywords []string
	// GroupSize is p, the exact number of members per group.
	GroupSize int
	// Tenuity is k: every pair of members must be more than k hops
	// apart (the group is a k-distance group).
	Tenuity int
	// TopN is N, the number of groups to return.
	TopN int
}

// Algorithm selects the search strategy.
type Algorithm int

const (
	// AlgVKCDeg is KTG-VKC-DEG, the paper's fastest exact algorithm:
	// valid-keyword-coverage ordering with an ascending-degree
	// tie-break. The zero value and the recommended default.
	AlgVKCDeg Algorithm = iota
	// AlgVKC is KTG-VKC (Algorithm 1): valid-keyword-coverage ordering.
	AlgVKC
	// AlgQKC is the KTG-QKC variant: static query-keyword-coverage
	// ordering, no re-sorting.
	AlgQKC
	// AlgBruteForce enumerates all size-p combinations. Exact but
	// exponential; use only on small networks or for verification.
	AlgBruteForce
)

// String names the algorithm as in the paper.
func (a Algorithm) String() string {
	switch a {
	case AlgVKCDeg:
		return "KTG-VKC-DEG"
	case AlgVKC:
		return "KTG-VKC"
	case AlgQKC:
		return "KTG-QKC"
	case AlgBruteForce:
		return "BruteForce"
	default:
		return "Algorithm(?)"
	}
}

// SearchOptions tunes a Search.
type SearchOptions struct {
	// Algorithm picks the search strategy (default AlgVKCDeg).
	Algorithm Algorithm
	// Index answers social-distance checks; nil uses the index-free
	// BFS baseline. Build one with Network.BuildNL or
	// Network.BuildNLRNL for repeated querying.
	Index DistanceIndex
	// DisableKeywordPruning turns off the branch-and-bound coverage
	// bound (for ablation measurements only).
	DisableKeywordPruning bool
	// UncappedPruneBound reproduces the paper's literal Theorem 2
	// bound. By default the bound is additionally capped at |W_Q|,
	// which is usually much faster and equally exact; enable this only
	// to reproduce the paper's cost model.
	UncappedPruneBound bool
	// MaxNodes bounds the branch-and-bound effort; 0 means unlimited.
	// When exceeded, Search returns the best groups found so far
	// together with ErrBudgetExhausted.
	MaxNodes int64
	// MaxDuration bounds the search wall-clock time; 0 means
	// unlimited. When exceeded, Search returns the best groups found
	// so far together with ErrBudgetExhausted.
	MaxDuration time.Duration
	// Context cancels the search from outside (request abandoned,
	// Ctrl-C, server shutdown). It is consulted in the same throttled
	// hot-path slots as MaxDuration; on cancellation Search returns the
	// best groups found so far together with an error wrapping
	// ctx.Err() (test with errors.Is against context.Canceled or
	// context.DeadlineExceeded). nil means no cancellation.
	Context context.Context
	// ExcludeMembers are vertices banned from all result groups.
	ExcludeMembers []Vertex
	// QueryVertices are "the authors": vertices whose social circle
	// must not review them. Every candidate within Tenuity hops of a
	// query vertex is removed before the search.
	QueryVertices []Vertex
	// Tracer receives phase spans (compile, candidate build, explore)
	// and sampled explore events for this search. nil disables tracing
	// at near-zero hot-path cost.
	Tracer Tracer
	// Probe collects a per-query explain plan (bound trajectory,
	// per-depth prune/filter breakdown) and publishes lock-free live
	// progress snapshots. nil disables collection at the cost of one
	// branch per node. Allocate a fresh Probe per query; after the
	// search returns, read probe.Explain().
	Probe *Probe
	// Logger overrides the Network and package-default loggers for this
	// search. nil inherits.
	Logger *slog.Logger
}

// ErrBudgetExhausted reports that MaxNodes was reached; the returned
// result holds the best groups found within the budget.
var ErrBudgetExhausted = core.ErrBudgetExhausted

// Group is one result group.
type Group struct {
	// Members in increasing vertex-id order.
	Members []Vertex
	// Covered lists the query keywords the members jointly cover.
	Covered []string
	// QKC is the group's query keyword coverage in [0, 1]
	// (|Covered| / |W_Q|).
	QKC float64
}

// SearchStats reports search effort. The JSON field names are stable;
// ktgquery -stats-json emits this struct verbatim.
type SearchStats struct {
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int64 `json:"nodes"`
	// Pruned counts subtrees cut by keyword pruning.
	Pruned int64 `json:"pruned"`
	// Filtered counts candidates removed by k-line filtering.
	Filtered int64 `json:"filtered"`
	// DistanceChecks counts social-distance queries.
	DistanceChecks int64 `json:"distance_checks"`
	// Feasible counts complete size-p groups evaluated.
	Feasible int64 `json:"feasible"`
	// CompileTime, CandidateTime, and ExploreTime break the search's
	// wall clock into its phases: query keyword compilation, initial
	// candidate-set construction, and branch-and-bound exploration.
	CompileTime   time.Duration `json:"compile_ns"`
	CandidateTime time.Duration `json:"candidate_ns"`
	ExploreTime   time.Duration `json:"explore_ns"`
	// DepthNodes, DepthPruned, and DepthFiltered histogram the search
	// effort by depth: index d counts events at nodes whose
	// intermediate group holds d members (index GroupSize marks
	// complete groups). Empty for algorithms without a depth notion.
	DepthNodes    []int64 `json:"depth_nodes,omitempty"`
	DepthPruned   []int64 `json:"depth_pruned,omitempty"`
	DepthFiltered []int64 `json:"depth_filtered,omitempty"`
}

// Result is the output of a KTG search.
type Result struct {
	// Groups holds at most TopN groups in descending coverage order.
	Groups []Group
	// Stats reports search effort.
	Stats SearchStats
}

// Search answers a KTG query on the network. If fewer than TopN feasible
// groups exist, all of them are returned; an infeasible query yields an
// empty result, not an error.
func (n *Network) Search(q Query, opts SearchOptions) (*Result, error) {
	cq, copts := n.lower(q, opts)
	var (
		res *core.Result
		err error
	)
	start := time.Now()
	if opts.Algorithm == AlgBruteForce {
		res, err = core.BruteForce(n.g, n.attrs, cq, copts)
	} else {
		res, err = core.Search(n.g, n.attrs, cq, copts)
	}
	if res == nil {
		return nil, err
	}
	recordSearch(time.Since(start), res.Stats, errors.Is(err, ErrBudgetExhausted))
	return n.lift(res, q.Keywords), err
}

// DiverseOptions tunes a SearchDiverse.
type DiverseOptions struct {
	// SearchOptions configures the per-group searches (DKTG-Greedy
	// runs KTG-VKC-DEG by default).
	SearchOptions
	// Gamma weighs minimum coverage against diversity in the total
	// score, in [0, 1]. The paper's case study uses 0.5.
	Gamma float64
}

// DiverseResult is the output of a DKTG search.
type DiverseResult struct {
	// Groups are pairwise-disjoint, in discovery order; the first
	// attains the globally optimal coverage.
	Groups []Group
	// Diversity is the mean pairwise Jaccard distance (1 = disjoint).
	Diversity float64
	// MinQKC is the smallest group coverage.
	MinQKC float64
	// Score is γ·MinQKC + (1-γ)·Diversity.
	Score float64
	// Stats aggregates effort across the per-group searches.
	Stats SearchStats
}

// SearchDiverse answers a DKTG query with the paper's DKTG-Greedy
// algorithm: top groups are found one at a time and their members are
// removed from the pool, so the returned groups never share members.
func (n *Network) SearchDiverse(q Query, opts DiverseOptions) (*DiverseResult, error) {
	cq, copts := n.lower(q, opts.SearchOptions)
	start := time.Now()
	dr, err := core.SearchDiverse(n.g, n.attrs, cq, core.DiverseOptions{
		Options: copts,
		Gamma:   opts.Gamma,
	})
	if dr == nil {
		return nil, err
	}
	recordSearch(time.Since(start), dr.Stats, errors.Is(err, ErrBudgetExhausted))
	out := &DiverseResult{
		Diversity: dr.Diversity,
		MinQKC:    dr.MinQKC,
		Score:     dr.Score,
		Stats:     liftStats(dr.Stats),
	}
	for _, grp := range dr.Groups {
		out.Groups = append(out.Groups, n.liftGroup(grp, dr.QueryWidth, q.Keywords))
	}
	return out, err
}

// SearchGreedy answers a KTG query approximately with a single greedy
// pass per group (no backtracking): from each seed vertex it repeatedly
// adds the compatible candidate with the highest valid keyword coverage.
// Returned groups always satisfy every KTG constraint, but their
// coverage may fall short of the exact optimum. seeds limits how many
// starting vertices are tried (0 = 4×TopN). Use it when exact search is
// too slow and a small coverage gap is acceptable.
func (n *Network) SearchGreedy(q Query, idx DistanceIndex, seeds int) (*Result, error) {
	return n.SearchGreedyWith(q, SearchOptions{Index: idx}, seeds)
}

// SearchGreedyWith is SearchGreedy with full options: opts.Index,
// opts.Context, opts.Tracer, and opts.Logger are honored (the other
// fields only apply to the exact algorithms). On cancellation the
// groups completed so far are returned together with an error wrapping
// ctx.Err().
func (n *Network) SearchGreedyWith(q Query, opts SearchOptions, seeds int) (*Result, error) {
	cq, copts := n.lower(q, opts)
	gopts := core.GreedyOptions{
		Seeds:   seeds,
		Context: opts.Context,
		Tracer:  copts.Tracer,
		Logger:  copts.Logger,
		Probe:   opts.Probe,
	}
	if opts.Index != nil {
		gopts.Oracle = opts.Index
	}
	start := time.Now()
	res, err := core.Greedy(n.g, n.attrs, cq, gopts)
	if res == nil {
		return nil, err
	}
	recordSearch(time.Since(start), res.Stats, false)
	return n.lift(res, q.Keywords), err
}

// TAGQBaseline runs the TAGQ-style comparison baseline of the paper's
// case study: coverage-greedy groups under a k-tenuity ratio budget
// instead of a hard k-distance constraint, with no per-member coverage
// requirement. budget is the allowed fraction of close member pairs
// (0 applies the default 0.34).
func (n *Network) TAGQBaseline(q Query, budget float64, idx DistanceIndex) (*Result, error) {
	cq, _ := n.lower(q, SearchOptions{})
	res, err := core.TAGQ(n.g, n.attrs, cq, core.TAGQOptions{Oracle: idx, TenuityBudget: budget})
	if err != nil {
		return nil, err
	}
	return n.lift(res, q.Keywords), nil
}

// lower converts public query/options to their core equivalents.
func (n *Network) lower(q Query, opts SearchOptions) (core.Query, core.Options) {
	cq := core.Query{
		Keywords: keywords.QueryIDsForNames(n.attrs, q.Keywords),
		P:        q.GroupSize,
		K:        q.Tenuity,
		N:        q.TopN,
	}
	var ordering core.Ordering
	switch opts.Algorithm {
	case AlgVKC:
		ordering = core.OrderVKC
	case AlgQKC:
		ordering = core.OrderQKC
	default:
		ordering = core.OrderVKCDegree
	}
	copts := core.Options{
		Ordering:              ordering,
		DisableKeywordPruning: opts.DisableKeywordPruning,
		UncappedPruneBound:    opts.UncappedPruneBound,
		MaxNodes:              opts.MaxNodes,
		MaxDuration:           opts.MaxDuration,
		Context:               opts.Context,
		ExcludeVertices:       opts.ExcludeMembers,
		QueryVertices:         opts.QueryVertices,
		Probe:                 opts.Probe,
	}
	if opts.Index != nil {
		copts.Oracle = opts.Index
	}
	if opts.Tracer != nil {
		copts.Tracer = opts.Tracer
	} else if n.tracer != nil {
		copts.Tracer = n.tracer
	}
	// Logger resolution: per-search beats per-Network beats the package
	// default (applied inside core via obs.Or).
	copts.Logger = opts.Logger
	if copts.Logger == nil {
		copts.Logger = n.logger
	}
	return cq, copts
}

func (n *Network) lift(res *core.Result, queryKeywords []string) *Result {
	out := &Result{Stats: liftStats(res.Stats)}
	for _, g := range res.Groups {
		out.Groups = append(out.Groups, n.liftGroup(g, res.QueryWidth, queryKeywords))
	}
	return out
}

func (n *Network) liftGroup(g core.Group, width int, queryKeywords []string) Group {
	have := map[string]bool{}
	for _, v := range g.Members {
		for _, kw := range n.attrs.KeywordNames(v) {
			have[kw] = true
		}
	}
	seen := map[string]bool{}
	var covered []string
	for _, kw := range queryKeywords {
		if have[kw] && !seen[kw] {
			seen[kw] = true
			covered = append(covered, kw)
		}
	}
	sort.Strings(covered)
	return Group{
		Members: append([]Vertex(nil), g.Members...),
		Covered: covered,
		QKC:     g.QKC(width),
	}
}

func liftStats(s core.Stats) SearchStats {
	return SearchStats{
		Nodes:          s.Nodes,
		Pruned:         s.Pruned,
		Filtered:       s.Filtered,
		DistanceChecks: s.OracleCalls,
		Feasible:       s.Feasible,
		CompileTime:    s.CompileTime,
		CandidateTime:  s.CandidateTime,
		ExploreTime:    s.ExploreTime,
		DepthNodes:     append([]int64(nil), s.DepthNodes...),
		DepthPruned:    append([]int64(nil), s.DepthPruned...),
		DepthFiltered:  append([]int64(nil), s.DepthFiltered...),
	}
}

// TenuityAudit quantifies how tenuous a set of members is: the number
// of pairs within k hops (k-lines), triples with all pairs within k
// hops (k-triangles), the k-tenuity ratio of Li et al., and the minimum
// pairwise hop distance (-1 when all pairs are disconnected). Groups
// returned by Search always audit to zero k-lines and MinDistance > k;
// use this to inspect groups from other sources (e.g. TAGQBaseline).
type TenuityAudit struct {
	K           int
	Pairs       int
	KLines      int
	KTriangles  int
	KTenuity    float64
	MinDistance int
}

// AuditTenuity measures the tenuity of an arbitrary member set. idx may
// be nil (BFS). Distances are resolved exactly up to maxHops.
func (n *Network) AuditTenuity(members []Vertex, k, maxHops int, idx DistanceIndex) TenuityAudit {
	var oracle index.Oracle
	if idx != nil {
		oracle = idx
	}
	rep := core.MeasureTenuity(n.g, members, k, maxHops, oracle)
	return TenuityAudit{
		K:           rep.K,
		Pairs:       rep.Pairs,
		KLines:      rep.KLines,
		KTriangles:  rep.KTriangles,
		KTenuity:    rep.KTenuity,
		MinDistance: rep.MinDistance,
	}
}

// CoveredKeywords returns the query keywords from q that the given
// members jointly cover, in q's order.
func (n *Network) CoveredKeywords(q Query, members []Vertex) []string {
	have := map[string]bool{}
	for _, v := range members {
		for _, kw := range n.attrs.KeywordNames(v) {
			have[kw] = true
		}
	}
	seen := map[string]bool{}
	var out []string
	for _, kw := range q.Keywords {
		if have[kw] && !seen[kw] {
			seen[kw] = true
			out = append(out, kw)
		}
	}
	sort.Strings(out)
	return out
}
