// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section VII) at reduced scale, plus ablation benchmarks
// for the design choices called out in DESIGN.md.
//
// Each BenchmarkTable*/BenchmarkFig* iteration executes the full
// corresponding experiment from internal/expr — the same code path the
// ktgbench CLI runs at larger scales. Dataset generation and index
// construction are cached across iterations (they are measured
// separately by BenchmarkFig9*).
package ktg_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ktg"
	"ktg/internal/expr"
)

// benchEnv returns a process-wide experiment environment at benchmark
// scale: ~0.4% of the paper's dataset sizes, 2 queries per point, with a
// 150ms per-query ceiling so a full -bench=. run stays in minutes. The
// ktgbench CLI runs the same experiments at larger scales and budgets.
var benchEnv = sync.OnceValue(func() *expr.Env {
	e := expr.NewEnv(0.004, 2, 11)
	e.MaxNodes = 2_000_000
	e.MaxTime = 150 * time.Millisecond
	return e
})

func benchExperiment(b *testing.B, id string) {
	e, ok := expr.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	env := benchEnv()
	// Pre-build datasets/indexes outside the timed region.
	if _, err := e.Run(env); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the Table I parameter grid report.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig3 regenerates Figure 3: latency vs group size p for
// KTG-QKC-NLRNL, KTG-VKC-NL, KTG-VKC-NLRNL, KTG-VKC-DEG-NLRNL and
// DKTG-Greedy on the four main datasets.
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4 regenerates Figure 4: latency vs social constraint k.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Figure 5: latency vs query keyword size.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6: latency vs N.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7a regenerates Figure 7(a): the denser Twitter graph,
// KTG-VKC vs KTG-VKC-DEG across p.
func BenchmarkFig7a(b *testing.B) { benchExperiment(b, "fig7a") }

// BenchmarkFig7b regenerates Figure 7(b): the large DBLP graph, NL vs
// NLRNL scalability across k.
func BenchmarkFig7b(b *testing.B) { benchExperiment(b, "fig7b") }

// BenchmarkFig8 regenerates the Figure 8 case study (KTG-VKC-DEG vs
// DKTG-Greedy vs TAGQ).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// benchNet returns a small Gowalla-like network for the index and
// ablation benchmarks.
var benchNet = sync.OnceValue(func() *ktg.Network {
	net, err := ktg.GeneratePreset("gowalla", 0.015)
	if err != nil {
		panic(err)
	}
	return net
})

// BenchmarkFig9a measures index space (Figure 9(a)): bytes per index on
// the benchmark dataset, reported as custom metrics.
func BenchmarkFig9a(b *testing.B) {
	net := benchNet()
	nl, err := net.BuildNL(0)
	if err != nil {
		b.Fatal(err)
	}
	nlrnl, err := net.BuildNLRNL()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(nl.SpaceBytes()), "NL-bytes")
	b.ReportMetric(float64(nlrnl.SpaceBytes()), "NLRNL-bytes")
	for i := 0; i < b.N; i++ {
		_ = nl.SpaceBytes() + nlrnl.SpaceBytes()
	}
}

// BenchmarkFig9b measures index construction time (Figure 9(b)).
func BenchmarkFig9b(b *testing.B) {
	net := benchNet()
	b.Run("NL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := net.BuildNL(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NLRNL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := net.BuildNLRNL(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchQuery is a representative mid-hardness query for the ablations.
func benchQuery(net *ktg.Network) ktg.Query {
	return ktg.Query{
		Keywords:  net.PopularKeywords(24)[18:24],
		GroupSize: 4,
		Tenuity:   2,
		TopN:      5,
	}
}

// BenchmarkAblationKeywordPruning isolates the Theorem 2 bound: the same
// search with pruning on vs off.
func BenchmarkAblationKeywordPruning(b *testing.B) {
	net := benchNet()
	idx, err := net.BuildNLRNL()
	if err != nil {
		b.Fatal(err)
	}
	q := benchQuery(net)
	for _, c := range []struct {
		name    string
		disable bool
	}{{"pruning-on", false}, {"pruning-off", true}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := net.Search(q, ktg.SearchOptions{
					Index:                 idx,
					DisableKeywordPruning: c.disable,
					MaxNodes:              5_000_000,
					MaxDuration:           2 * time.Second,
				}); err != nil && !errors.Is(err, ktg.ErrBudgetExhausted) {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBoundCap compares the paper's literal Theorem 2 bound
// with this implementation's |W_Q|-capped bound (see
// SearchOptions.UncappedPruneBound).
func BenchmarkAblationBoundCap(b *testing.B) {
	net := benchNet()
	idx, err := net.BuildNLRNL()
	if err != nil {
		b.Fatal(err)
	}
	q := benchQuery(net)
	for _, c := range []struct {
		name     string
		uncapped bool
	}{{"capped", false}, {"paper-uncapped", true}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := net.Search(q, ktg.SearchOptions{
					Index:              idx,
					UncappedPruneBound: c.uncapped,
					MaxNodes:           5_000_000,
					MaxDuration:        2 * time.Second,
				}); err != nil && !errors.Is(err, ktg.ErrBudgetExhausted) {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOracle runs the same search over each distance oracle.
func BenchmarkAblationOracle(b *testing.B) {
	net := benchNet()
	nl, err := net.BuildNL(0)
	if err != nil {
		b.Fatal(err)
	}
	nlrnl, err := net.BuildNLRNL()
	if err != nil {
		b.Fatal(err)
	}
	pll, err := net.BuildPLL()
	if err != nil {
		b.Fatal(err)
	}
	q := benchQuery(net)
	for _, idx := range []ktg.DistanceIndex{net.NewBFSIndex(), nl, nlrnl, pll} {
		b.Run(idx.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := net.Search(q, ktg.SearchOptions{
					Index:    idx,
					MaxNodes: 5_000_000,
				}); err != nil && !errors.Is(err, ktg.ErrBudgetExhausted) {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOrdering compares the three candidate orderings under
// the paper's cost model.
func BenchmarkAblationOrdering(b *testing.B) {
	net := benchNet()
	idx, err := net.BuildNLRNL()
	if err != nil {
		b.Fatal(err)
	}
	q := benchQuery(net)
	for _, alg := range []ktg.Algorithm{ktg.AlgQKC, ktg.AlgVKC, ktg.AlgVKCDeg} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := net.Search(q, ktg.SearchOptions{
					Algorithm:          alg,
					Index:              idx,
					UncappedPruneBound: true,
					MaxNodes:           5_000_000,
					MaxDuration:        2 * time.Second,
				}); err != nil && !errors.Is(err, ktg.ErrBudgetExhausted) {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchDiverse measures the DKTG-Greedy overhead over a plain
// top-N search.
// BenchmarkSearch measures one exact KTG-VKC-DEG/NLRNL query — the
// reference number for the observability layer's "near-zero cost when
// off" requirement. The off/traced sub-benchmarks differ only in
// whether a Tracer is installed, so their delta is the tracing
// overhead.
func BenchmarkSearch(b *testing.B) {
	net := benchNet()
	idx, err := net.BuildNLRNL()
	if err != nil {
		b.Fatal(err)
	}
	q := benchQuery(net)
	run := func(b *testing.B, opts ktg.SearchOptions) {
		opts.Index = idx
		opts.MaxNodes = 5_000_000
		opts.MaxDuration = 2 * time.Second
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := net.Search(q, opts); err != nil && !errors.Is(err, ktg.ErrBudgetExhausted) {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, ktg.SearchOptions{}) })
	b.Run("traced", func(b *testing.B) {
		run(b, ktg.SearchOptions{Tracer: &countTracer{}})
	})
	// A probe is single-use, so it must be created inside the loop —
	// which is also how the server uses it (one per request).
	b.Run("probe", func(b *testing.B) {
		idxOpts := ktg.SearchOptions{Index: idx, MaxNodes: 5_000_000, MaxDuration: 2 * time.Second}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			opts := idxOpts
			opts.Probe = &ktg.Probe{}
			if _, err := net.Search(q, opts); err != nil && !errors.Is(err, ktg.ErrBudgetExhausted) {
				b.Fatal(err)
			}
		}
	})
}

// countTracer is the cheapest possible live tracer: two atomic counters.
type countTracer struct{ spans, events atomic.Int64 }

func (t *countTracer) Span(string, time.Duration)  { t.spans.Add(1) }
func (t *countTracer) Event(string, string, int64) { t.events.Add(1) }

func BenchmarkSearchDiverse(b *testing.B) {
	net := benchNet()
	idx, err := net.BuildNLRNL()
	if err != nil {
		b.Fatal(err)
	}
	q := benchQuery(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.SearchDiverse(q, ktg.DiverseOptions{
			SearchOptions: ktg.SearchOptions{Index: idx, MaxNodes: 5_000_000, MaxDuration: 2 * time.Second},
			Gamma:         0.5,
		}); err != nil && !errors.Is(err, ktg.ErrBudgetExhausted) {
			b.Fatal(err)
		}
	}
}
